package rdb

import (
	"context"
	"fmt"
	"time"

	"xpath2sql/internal/obs"
	"xpath2sql/internal/ra"
)

// Stats records the work an execution performed; the benchmark harness
// reports these alongside wall-clock time.
type Stats struct {
	Joins     int // hash joins performed (compose/semi/anti + fixpoint steps)
	Unions    int // two-way unions performed
	LFPs      int // Φ(R) operators evaluated
	LFPIters  int // total fixpoint iterations across all Φ and RecUnion
	RecFixes  int // multi-relation fixpoints evaluated (SQLGen-R)
	TuplesOut int // tuples produced across all operators
	StmtsRun  int // statements actually evaluated (lazy evaluation skips some)
}

// Ops converts the counters to the per-statement shape of the obs layer.
func (s Stats) Ops() obs.OpStats {
	return obs.OpStats{
		Joins:     s.Joins,
		Unions:    s.Unions,
		LFPs:      s.LFPs,
		LFPIters:  s.LFPIters,
		RecFixes:  s.RecFixes,
		TuplesOut: s.TuplesOut,
	}
}

// Minus returns the fieldwise difference a - b: the work performed between
// two snapshots of an executor's counters.
func (a Stats) Minus(b Stats) Stats {
	return Stats{
		Joins:     a.Joins - b.Joins,
		Unions:    a.Unions - b.Unions,
		LFPs:      a.LFPs - b.LFPs,
		LFPIters:  a.LFPIters - b.LFPIters,
		RecFixes:  a.RecFixes - b.RecFixes,
		TuplesOut: a.TuplesOut - b.TuplesOut,
		StmtsRun:  a.StmtsRun - b.StmtsRun,
	}
}

// Exec evaluates programs against a database.
type Exec struct {
	DB    *DB
	Stats Stats

	// Lazy enables the top-down evaluation strategy of §5.2: a statement is
	// computed only when referenced. Disabled, statements run in order.
	Lazy bool

	// Limits bounds the resources the next Run/RunCtx may consume;
	// exceeding one returns a *obs.LimitError. The zero value is unlimited.
	Limits obs.Limits

	prog    *ra.Program
	env     map[string]*Relation
	ident   *Relation // cached R_id
	running map[string]bool

	// Cancellation, limit and trace state (RunCtx).
	ctx      context.Context
	trace    *obs.Trace
	start    time.Time
	deadline time.Time // from Limits.Timeout; zero = unbounded
	cur      []string  // stack of statement names under evaluation
	frames   []execFrame
}

// execFrame tracks one in-flight statement so per-statement trace events
// report exclusive work: a nested statement's (inclusive) cost is charged to
// that statement and subtracted from its parent.
type execFrame struct {
	snap      Stats // executor stats at statement entry
	child     Stats // inclusive work of nested statements
	childWall time.Duration
	began     time.Time
}

// NewExec returns an executor with lazy (top-down) evaluation enabled.
func NewExec(db *DB) *Exec {
	return &Exec{DB: db, Lazy: true}
}

// prepare arms the cancellation/limit/trace state for one run.
func (e *Exec) prepare(ctx context.Context, trace *obs.Trace) {
	e.ctx = ctx
	e.trace = trace
	e.start = time.Now()
	e.deadline = time.Time{}
	if e.Limits.Timeout > 0 {
		e.deadline = e.start.Add(e.Limits.Timeout)
	}
	e.cur = e.cur[:0]
	e.frames = e.frames[:0]
}

// RunMore evaluates a program against the executor's existing memoized
// environment: statements computed by earlier Run/RunMore calls (by name)
// are reused, the execution side of multi-query optimization. The caller
// must ensure statement names agree across calls.
func (e *Exec) RunMore(p *ra.Program) (*Relation, error) {
	return e.RunMoreCtx(context.Background(), p, nil)
}

// RunMoreCtx is RunMore with cancellation, limits and tracing; see RunCtx.
// The wall-clock budget of Limits.Timeout restarts at each call.
func (e *Exec) RunMoreCtx(ctx context.Context, p *ra.Program, trace *obs.Trace) (*Relation, error) {
	e.prog = p
	if e.env == nil {
		e.env = map[string]*Relation{}
		e.running = map[string]bool{}
	}
	e.prepare(ctx, trace)
	return e.stmt(p.Result)
}

// Run executes the program and returns its result relation.
func (e *Exec) Run(p *ra.Program) (*Relation, error) {
	return e.RunCtx(context.Background(), p, nil)
}

// RunCtx executes the program under a context: ctx.Err() is checked between
// statements and between fixpoint iterations, so a cancelled or expired
// context makes the run return promptly with context.Canceled or
// context.DeadlineExceeded. The executor's Limits are enforced at the same
// points, returning typed *obs.LimitError values. When trace is non-nil, one
// obs.StmtEvent is recorded per evaluated statement with its exclusive
// operator counts, cardinalities and wall time; the trace totals then agree
// with e.Stats.
func (e *Exec) RunCtx(ctx context.Context, p *ra.Program, trace *obs.Trace) (*Relation, error) {
	e.prog = p
	e.env = map[string]*Relation{}
	e.running = map[string]bool{}
	e.prepare(ctx, trace)
	if !e.Lazy {
		for _, s := range p.Stmts {
			if _, err := e.stmt(s.Name); err != nil {
				return nil, err
			}
		}
	}
	return e.stmt(p.Result)
}

// curStmt names the statement currently under evaluation ("" outside one).
func (e *Exec) curStmt() string {
	if len(e.cur) == 0 {
		return ""
	}
	return e.cur[len(e.cur)-1]
}

// check enforces the context and the global limits. It is called between
// statements and between fixpoint iterations — the points where execution
// can be abandoned without leaving shared state corrupted.
func (e *Exec) check() error {
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return err
		}
	}
	if !e.deadline.IsZero() {
		if now := time.Now(); now.After(e.deadline) {
			return &obs.LimitError{
				Kind: obs.LimitTimeout, Stmt: e.curStmt(),
				Limit: int64(e.Limits.Timeout), Actual: int64(now.Sub(e.start)),
			}
		}
	}
	if e.Limits.MaxTuples > 0 && e.Stats.TuplesOut > e.Limits.MaxTuples {
		return &obs.LimitError{
			Kind: obs.LimitTuples, Stmt: e.curStmt(),
			Limit: int64(e.Limits.MaxTuples), Actual: int64(e.Stats.TuplesOut),
		}
	}
	return nil
}

// stmt evaluates (or returns the memoized result of) a named statement.
func (e *Exec) stmt(name string) (*Relation, error) {
	if r, ok := e.env[name]; ok {
		return r, nil
	}
	if e.running[name] {
		return nil, fmt.Errorf("rdb: cyclic statement reference %q", name)
	}
	pl := e.prog.Lookup(name)
	if pl == nil {
		return nil, fmt.Errorf("rdb: unknown statement %q", name)
	}
	if err := e.check(); err != nil {
		return nil, err
	}
	e.running[name] = true
	e.cur = append(e.cur, name)
	if e.trace != nil {
		e.frames = append(e.frames, execFrame{snap: e.Stats, began: time.Now()})
	}
	r, err := e.eval(pl)
	if err == nil {
		e.Stats.StmtsRun++
	}
	delete(e.running, name)
	e.cur = e.cur[:len(e.cur)-1]
	if e.trace != nil {
		f := e.frames[len(e.frames)-1]
		e.frames = e.frames[:len(e.frames)-1]
		wall := time.Since(f.began)
		inclusive := e.Stats.Minus(f.snap)
		exclusive := inclusive.Minus(f.child)
		if len(e.frames) > 0 {
			parent := &e.frames[len(e.frames)-1]
			addStats(&parent.child, inclusive)
			parent.childWall += wall
		}
		if err == nil {
			e.trace.Add(obs.StmtEvent{
				Stmt: name,
				Op:   obs.OpKind(pl),
				In:   e.inputCard(pl),
				Out:  r.Len(),
				Ops:  exclusive.Ops(),
				Wall: wall - f.childWall,
			})
		}
	}
	if err != nil {
		return nil, err
	}
	r.Name = name
	e.env[name] = r
	return r, nil
}

// inputCard sums the cardinalities of the distinct stored relations and
// temporaries a plan reads — the "input cardinality" of its trace event.
// Temporaries are read from the memoized environment, which holds them by
// the time the statement's own event is recorded.
func (e *Exec) inputCard(pl ra.Plan) int {
	seen := map[string]bool{}
	total := 0
	base := func(rel string) {
		if !seen["b\x00"+rel] {
			seen["b\x00"+rel] = true
			total += e.DB.Rel(rel).Len()
		}
	}
	var walk func(p ra.Plan)
	walk = func(p ra.Plan) {
		switch p := p.(type) {
		case ra.Base:
			base(p.Rel)
		case ra.Temp:
			if !seen["t\x00"+p.Name] {
				seen["t\x00"+p.Name] = true
				if r, ok := e.env[p.Name]; ok {
					total += r.Len()
				}
			}
		case ra.Ident:
			if !seen["\x00id"] {
				seen["\x00id"] = true
				total += len(e.DB.Vals) + 1
			}
		case ra.RootSeed:
			if !seen["\x00root"] {
				seen["\x00root"] = true
				total++
			}
		case ra.IdentOf:
			walk(p.Child)
		case ra.Compose:
			walk(p.L)
			walk(p.R)
		case ra.UnionAll:
			for _, k := range p.Kids {
				walk(k)
			}
		case ra.Fix:
			walk(p.Seed)
			if p.Start != nil {
				walk(p.Start)
			}
			if p.End != nil {
				walk(p.End)
			}
		case ra.SelectVal:
			walk(p.Child)
		case ra.SelectRoot:
			walk(p.Child)
		case ra.Semijoin:
			walk(p.L)
			walk(p.R)
		case ra.Antijoin:
			walk(p.L)
			walk(p.R)
		case ra.Diff:
			walk(p.L)
			walk(p.R)
		case ra.TypeFilter:
			base(p.Rel)
			walk(p.Child)
		case ra.RecUnion:
			for _, t := range p.Init {
				walk(t.Plan)
			}
			for _, ed := range p.Edges {
				walk(ed.Rel)
			}
		}
	}
	walk(pl)
	return total
}

func (e *Exec) eval(pl ra.Plan) (*Relation, error) {
	switch pl := pl.(type) {
	case ra.Base:
		return e.DB.Rel(pl.Rel), nil
	case ra.Temp:
		return e.stmt(pl.Name)
	case ra.Ident:
		return e.identRel(), nil
	case ra.IdentOf:
		child, err := e.eval(pl.Child)
		if err != nil {
			return nil, err
		}
		out := NewRelation("")
		if pl.OnF {
			for f := range child.FSet() {
				out.Add(f, f, e.DB.Vals[f])
			}
		} else {
			for t := range child.TSet() {
				out.Add(t, t, e.DB.Vals[t])
			}
		}
		e.Stats.TuplesOut += out.Len()
		return out, nil
	case ra.Compose:
		l, err := e.eval(pl.L)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(pl.R)
		if err != nil {
			return nil, err
		}
		return e.compose(l, r), nil
	case ra.UnionAll:
		out := NewRelation("")
		for i, k := range pl.Kids {
			kr, err := e.eval(k)
			if err != nil {
				return nil, err
			}
			if i > 0 {
				e.Stats.Unions++
			}
			for _, t := range kr.Tuples() {
				if out.Add(t.F, t.T, t.V) {
					e.Stats.TuplesOut++
				}
			}
		}
		return out, nil
	case ra.Fix:
		return e.fix(pl)
	case ra.SelectVal:
		child, err := e.eval(pl.Child)
		if err != nil {
			return nil, err
		}
		out := NewRelation("")
		for _, t := range child.Tuples() {
			if t.V == pl.Val {
				out.Add(t.F, t.T, t.V)
			}
		}
		e.Stats.TuplesOut += out.Len()
		return out, nil
	case ra.SelectRoot:
		child, err := e.eval(pl.Child)
		if err != nil {
			return nil, err
		}
		out := NewRelation("")
		for _, t := range child.Tuples() {
			if t.F == 0 {
				out.Add(t.F, t.T, t.V)
			}
		}
		e.Stats.TuplesOut += out.Len()
		return out, nil
	case ra.Semijoin:
		l, err := e.eval(pl.L)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(pl.R)
		if err != nil {
			return nil, err
		}
		e.Stats.Joins++
		wit := r.FSet()
		out := NewRelation("")
		for _, t := range l.Tuples() {
			if _, ok := wit[t.T]; ok {
				out.Add(t.F, t.T, t.V)
			}
		}
		e.Stats.TuplesOut += out.Len()
		return out, nil
	case ra.Antijoin:
		l, err := e.eval(pl.L)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(pl.R)
		if err != nil {
			return nil, err
		}
		e.Stats.Joins++
		wit := r.FSet()
		out := NewRelation("")
		for _, t := range l.Tuples() {
			if _, ok := wit[t.T]; !ok {
				out.Add(t.F, t.T, t.V)
			}
		}
		e.Stats.TuplesOut += out.Len()
		return out, nil
	case ra.Diff:
		l, err := e.eval(pl.L)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(pl.R)
		if err != nil {
			return nil, err
		}
		out := NewRelation("")
		for _, t := range l.Tuples() {
			if !r.Has(t.F, t.T) {
				out.Add(t.F, t.T, t.V)
			}
		}
		e.Stats.TuplesOut += out.Len()
		return out, nil
	case ra.RootSeed:
		out := NewRelation("")
		out.Add(0, 0, "")
		return out, nil
	case ra.TypeFilter:
		child, err := e.eval(pl.Child)
		if err != nil {
			return nil, err
		}
		e.Stats.Joins++
		typed := e.DB.Rel(pl.Rel).TSet()
		out := NewRelation("")
		for _, t := range child.Tuples() {
			col := t.T
			if pl.OnF {
				col = t.F
			}
			if _, ok := typed[col]; ok {
				out.Add(t.F, t.T, t.V)
			}
		}
		e.Stats.TuplesOut += out.Len()
		return out, nil
	case ra.RecUnion:
		return e.recUnion(pl)
	}
	return nil, fmt.Errorf("rdb: unsupported plan %T", pl)
}

// identRel materializes R_id: (v, v, v.val) for every stored node, plus the
// virtual document root (0, 0) so that ε holds at the top-level context.
// A query answer of node 0 is filtered out at extraction time — the virtual
// root is a context, never a result.
func (e *Exec) identRel() *Relation {
	if e.ident == nil {
		r := NewRelation("Rid")
		r.Add(0, 0, "")
		for id, v := range e.DB.Vals {
			r.Add(id, id, v)
		}
		e.ident = r
	}
	return e.ident
}

// compose performs the path join π_{l.F, r.T, r.V}(l ⋈_{l.T=r.F} r).
func (e *Exec) compose(l, r *Relation) *Relation {
	e.Stats.Joins++
	out := NewRelation("")
	// Probe the smaller side's index.
	if l.Len() <= r.Len() {
		for _, lt := range l.Tuples() {
			for _, pos := range r.ByF(lt.T) {
				rt := r.Tuples()[pos]
				if out.Add(lt.F, rt.T, rt.V) {
					e.Stats.TuplesOut++
				}
			}
		}
	} else {
		for _, rt := range r.Tuples() {
			for _, pos := range l.ByT(rt.F) {
				lt := l.Tuples()[pos]
				if out.Add(lt.F, rt.T, rt.V) {
					e.Stats.TuplesOut++
				}
			}
		}
	}
	return out
}

// fix evaluates Φ(R) (Eq. 2): the transitive closure of the seed relation,
// with optional pushed start/end constraints (§5.2). Semi-naive: each
// iteration joins only the previous delta against the seed.
func (e *Exec) fix(pl ra.Fix) (*Relation, error) {
	seed, err := e.eval(pl.Seed)
	if err != nil {
		return nil, err
	}
	e.Stats.LFPs++
	var startSet, endSet map[int]struct{}
	if pl.Start != nil {
		s, err := e.eval(pl.Start)
		if err != nil {
			return nil, err
		}
		startSet = s.TSet()
	}
	if pl.End != nil {
		s, err := e.eval(pl.End)
		if err != nil {
			return nil, err
		}
		endSet = s.FSet()
	}

	out := NewRelation("")
	addOut := func(f, t int, v string) bool {
		if out.Add(f, t, v) {
			e.Stats.TuplesOut++
			return true
		}
		return false
	}
	// step guards one fixpoint iteration: cancellation and limit checks
	// happen here, between iterations, so an abandoned Φ leaves no shared
	// state behind.
	iters := 0
	step := func() error {
		iters++
		e.Stats.LFPIters++
		if e.Limits.MaxLFPIters > 0 && iters > e.Limits.MaxLFPIters {
			return &obs.LimitError{
				Kind: obs.LimitLFPIters, Stmt: e.curStmt(),
				Limit: int64(e.Limits.MaxLFPIters), Actual: int64(iters),
			}
		}
		return e.check()
	}
	// Path tracking (§5.2 "XML reconstruction"): the P attribute of a new
	// tuple concatenates the extending edge onto the witnessing path.
	track := pl.TrackPaths
	setSeedPath := func(t Tuple) {
		if track {
			out.SetPath(t.F, t.T, []int{t.T})
		}
	}
	extendPath := func(base Tuple, newT int) {
		if track {
			prev := out.PathOf(base.F, base.T)
			path := make([]int, len(prev)+1)
			copy(path, prev)
			path[len(prev)] = newT
			out.SetPath(base.F, newT, path)
		}
	}
	prependPath := func(newF int, base Tuple) {
		if track {
			prev := out.PathOf(base.F, base.T)
			path := make([]int, 0, len(prev)+1)
			path = append(path, base.F)
			path = append(path, prev...)
			out.SetPath(newF, base.T, path)
		}
	}

	switch {
	case startSet != nil:
		// Forward iteration from the constrained frontier:
		// C = R.F ∈ π_T(Start) ∧ R_{i-1}.T = R_0.F.
		var delta []Tuple
		for _, t := range seed.Tuples() {
			if _, ok := startSet[t.F]; ok {
				if addOut(t.F, t.T, t.V) {
					setSeedPath(t)
					delta = append(delta, t)
				}
			}
		}
		for len(delta) > 0 {
			if err := step(); err != nil {
				return nil, err
			}
			e.Stats.Joins++
			var next []Tuple
			for _, d := range delta {
				for _, pos := range seed.ByF(d.T) {
					st := seed.Tuples()[pos]
					if addOut(d.F, st.T, st.V) {
						extendPath(d, st.T)
						next = append(next, Tuple{F: d.F, T: st.T, V: st.V})
					}
				}
			}
			e.Stats.Unions++
			delta = next
		}
		if endSet != nil {
			filtered := NewRelation("")
			for _, t := range out.Tuples() {
				if _, ok := endSet[t.T]; ok {
					filtered.Add(t.F, t.T, t.V)
					if track {
						filtered.SetPath(t.F, t.T, out.PathOf(t.F, t.T))
					}
				}
			}
			out = filtered
		}
	case endSet != nil:
		// Backward iteration: C = R.T ∈ π_F(End) ∧ R_{i-1}.F = R_0.T.
		var delta []Tuple
		for _, t := range seed.Tuples() {
			if _, ok := endSet[t.T]; ok {
				if addOut(t.F, t.T, t.V) {
					setSeedPath(t)
					delta = append(delta, t)
				}
			}
		}
		for len(delta) > 0 {
			if err := step(); err != nil {
				return nil, err
			}
			e.Stats.Joins++
			var next []Tuple
			for _, d := range delta {
				for _, pos := range seed.ByT(d.F) {
					st := seed.Tuples()[pos]
					if addOut(st.F, d.T, d.V) {
						prependPath(st.F, d)
						next = append(next, Tuple{F: st.F, T: d.T, V: d.V})
					}
				}
			}
			e.Stats.Unions++
			delta = next
		}
	default:
		// Unconstrained transitive closure.
		delta := append([]Tuple(nil), seed.Tuples()...)
		for _, t := range delta {
			if addOut(t.F, t.T, t.V) {
				setSeedPath(t)
			}
		}
		for len(delta) > 0 {
			if err := step(); err != nil {
				return nil, err
			}
			e.Stats.Joins++
			var next []Tuple
			for _, d := range delta {
				for _, pos := range seed.ByF(d.T) {
					st := seed.Tuples()[pos]
					if addOut(d.F, st.T, st.V) {
						extendPath(d, st.T)
						next = append(next, Tuple{F: d.F, T: st.T, V: st.V})
					}
				}
			}
			e.Stats.Unions++
			delta = next
		}
	}
	return out, nil
}

// recUnion evaluates the SQL'99-style multi-relation fixpoint of SQLGen-R.
// In edge mode (Pairs false) the result accumulates *edges* reachable from
// the seed exactly as in Fig 2 / Table 2; in pair mode it accumulates
// (origin, current) pairs, the product-automaton form. Either way each tuple
// carries an Rid tag and every iteration performs one join and one union per
// edge relation against the *entire accumulated relation*, per Eq. (1):
// R_i ← R_{i−1} ∪ (R_{i−1} ⋈ R_1) ∪ … ∪ (R_{i−1} ⋈ R_k). The operator is a
// black box ("the relation in the center keeps growing, but one can do
// little to optimize the operations inside the with…recursion expression",
// §3.1), so no delta optimization is applied — that asymmetry against the
// single-input Φ(R), which CONNECT BY evaluates level by level, is exactly
// the effect the paper's experiments measure.
func (e *Exec) recUnion(pl ra.RecUnion) (*Relation, error) {
	e.Stats.RecFixes++
	type tagged struct {
		t   Tuple
		tag string
	}
	tagIdx := map[string]int{}
	tagOf := func(tag string) int {
		i, ok := tagIdx[tag]
		if !ok {
			i = len(tagIdx)
			tagIdx[tag] = i
		}
		return i
	}
	type tkey struct {
		tag  int
		f, t int
	}
	seen := map[tkey]struct{}{}
	all := NewRelation("")
	result := all
	if pl.ResultTag != "" {
		result = NewRelation("")
	}
	// acc is the growing star-center relation R of Eq. (1)/Fig 2.
	var acc []tagged
	grew := false
	add := func(tag string, t Tuple) {
		k := tkey{tag: tagOf(tag), f: t.F, t: t.T}
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		all.Add(t.F, t.T, t.V)
		if pl.ResultTag != "" && tag == pl.ResultTag {
			result.Add(t.F, t.T, t.V)
		}
		e.Stats.TuplesOut++
		acc = append(acc, tagged{t: t, tag: tag})
		grew = true
	}
	for _, init := range pl.Init {
		r, err := e.eval(init.Plan)
		if err != nil {
			return nil, err
		}
		for _, t := range r.Tuples() {
			add(init.Tag, t)
		}
	}
	// Pre-evaluate edge relations (they are base tables in SQLGen-R plans).
	edgeRels := make([]*Relation, len(pl.Edges))
	for i, ed := range pl.Edges {
		r, err := e.eval(ed.Rel)
		if err != nil {
			return nil, err
		}
		edgeRels[i] = r
	}
	iters := 0
	for grew = true; grew; {
		grew = false
		iters++
		e.Stats.LFPIters++
		if e.Limits.MaxLFPIters > 0 && iters > e.Limits.MaxLFPIters {
			return nil, &obs.LimitError{
				Kind: obs.LimitLFPIters, Stmt: e.curStmt(),
				Limit: int64(e.Limits.MaxLFPIters), Actual: int64(iters),
			}
		}
		if err := e.check(); err != nil {
			return nil, err
		}
		// One join + one union per edge relation against the whole of R:
		// the star-shaped body of Fig 2.
		snapshot := len(acc)
		for i, ed := range pl.Edges {
			e.Stats.Joins++
			e.Stats.Unions++
			rel := edgeRels[i]
			for j := 0; j < snapshot; j++ {
				d := acc[j]
				if d.tag != ed.FromTag {
					continue
				}
				for _, pos := range rel.ByF(d.t.T) {
					et := rel.Tuples()[pos]
					if pl.Pairs {
						// Keep the origin: (d.F, edge.T).
						add(ed.ToTag, Tuple{F: d.t.F, T: et.T, V: et.V})
					} else {
						// Fig 2: insert the edge's own (F, T).
						add(ed.ToTag, et)
					}
				}
			}
		}
	}
	return result, nil
}
