package rdb

import (
	"fmt"

	"xpath2sql/internal/ra"
)

// Stats records the work an execution performed; the benchmark harness
// reports these alongside wall-clock time.
type Stats struct {
	Joins     int // hash joins performed (compose/semi/anti + fixpoint steps)
	Unions    int // two-way unions performed
	LFPs      int // Φ(R) operators evaluated
	LFPIters  int // total fixpoint iterations across all Φ and RecUnion
	RecFixes  int // multi-relation fixpoints evaluated (SQLGen-R)
	TuplesOut int // tuples produced across all operators
	StmtsRun  int // statements actually evaluated (lazy evaluation skips some)
}

// Exec evaluates programs against a database.
type Exec struct {
	DB    *DB
	Stats Stats

	// Lazy enables the top-down evaluation strategy of §5.2: a statement is
	// computed only when referenced. Disabled, statements run in order.
	Lazy bool

	prog    *ra.Program
	env     map[string]*Relation
	ident   *Relation // cached R_id
	running map[string]bool
}

// NewExec returns an executor with lazy (top-down) evaluation enabled.
func NewExec(db *DB) *Exec {
	return &Exec{DB: db, Lazy: true}
}

// RunMore evaluates a program against the executor's existing memoized
// environment: statements computed by earlier Run/RunMore calls (by name)
// are reused, the execution side of multi-query optimization. The caller
// must ensure statement names agree across calls.
func (e *Exec) RunMore(p *ra.Program) (*Relation, error) {
	e.prog = p
	if e.env == nil {
		e.env = map[string]*Relation{}
		e.running = map[string]bool{}
	}
	return e.stmt(p.Result)
}

// Run executes the program and returns its result relation.
func (e *Exec) Run(p *ra.Program) (*Relation, error) {
	e.prog = p
	e.env = map[string]*Relation{}
	e.running = map[string]bool{}
	if !e.Lazy {
		for _, s := range p.Stmts {
			r, err := e.stmt(s.Name)
			if err != nil {
				return nil, err
			}
			_ = r
		}
	}
	return e.stmt(p.Result)
}

// stmt evaluates (or returns the memoized result of) a named statement.
func (e *Exec) stmt(name string) (*Relation, error) {
	if r, ok := e.env[name]; ok {
		return r, nil
	}
	if e.running[name] {
		return nil, fmt.Errorf("rdb: cyclic statement reference %q", name)
	}
	pl := e.prog.Lookup(name)
	if pl == nil {
		return nil, fmt.Errorf("rdb: unknown statement %q", name)
	}
	e.running[name] = true
	defer delete(e.running, name)
	r, err := e.eval(pl)
	if err != nil {
		return nil, err
	}
	e.Stats.StmtsRun++
	r.Name = name
	e.env[name] = r
	return r, nil
}

func (e *Exec) eval(pl ra.Plan) (*Relation, error) {
	switch pl := pl.(type) {
	case ra.Base:
		return e.DB.Rel(pl.Rel), nil
	case ra.Temp:
		return e.stmt(pl.Name)
	case ra.Ident:
		return e.identRel(), nil
	case ra.IdentOf:
		child, err := e.eval(pl.Child)
		if err != nil {
			return nil, err
		}
		out := NewRelation("")
		if pl.OnF {
			for f := range child.FSet() {
				out.Add(f, f, e.DB.Vals[f])
			}
		} else {
			for t := range child.TSet() {
				out.Add(t, t, e.DB.Vals[t])
			}
		}
		e.Stats.TuplesOut += out.Len()
		return out, nil
	case ra.Compose:
		l, err := e.eval(pl.L)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(pl.R)
		if err != nil {
			return nil, err
		}
		return e.compose(l, r), nil
	case ra.UnionAll:
		out := NewRelation("")
		for i, k := range pl.Kids {
			kr, err := e.eval(k)
			if err != nil {
				return nil, err
			}
			if i > 0 {
				e.Stats.Unions++
			}
			for _, t := range kr.Tuples() {
				if out.Add(t.F, t.T, t.V) {
					e.Stats.TuplesOut++
				}
			}
		}
		return out, nil
	case ra.Fix:
		return e.fix(pl)
	case ra.SelectVal:
		child, err := e.eval(pl.Child)
		if err != nil {
			return nil, err
		}
		out := NewRelation("")
		for _, t := range child.Tuples() {
			if t.V == pl.Val {
				out.Add(t.F, t.T, t.V)
			}
		}
		e.Stats.TuplesOut += out.Len()
		return out, nil
	case ra.SelectRoot:
		child, err := e.eval(pl.Child)
		if err != nil {
			return nil, err
		}
		out := NewRelation("")
		for _, t := range child.Tuples() {
			if t.F == 0 {
				out.Add(t.F, t.T, t.V)
			}
		}
		e.Stats.TuplesOut += out.Len()
		return out, nil
	case ra.Semijoin:
		l, err := e.eval(pl.L)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(pl.R)
		if err != nil {
			return nil, err
		}
		e.Stats.Joins++
		wit := r.FSet()
		out := NewRelation("")
		for _, t := range l.Tuples() {
			if _, ok := wit[t.T]; ok {
				out.Add(t.F, t.T, t.V)
			}
		}
		e.Stats.TuplesOut += out.Len()
		return out, nil
	case ra.Antijoin:
		l, err := e.eval(pl.L)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(pl.R)
		if err != nil {
			return nil, err
		}
		e.Stats.Joins++
		wit := r.FSet()
		out := NewRelation("")
		for _, t := range l.Tuples() {
			if _, ok := wit[t.T]; !ok {
				out.Add(t.F, t.T, t.V)
			}
		}
		e.Stats.TuplesOut += out.Len()
		return out, nil
	case ra.Diff:
		l, err := e.eval(pl.L)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(pl.R)
		if err != nil {
			return nil, err
		}
		out := NewRelation("")
		for _, t := range l.Tuples() {
			if !r.Has(t.F, t.T) {
				out.Add(t.F, t.T, t.V)
			}
		}
		e.Stats.TuplesOut += out.Len()
		return out, nil
	case ra.RootSeed:
		out := NewRelation("")
		out.Add(0, 0, "")
		return out, nil
	case ra.TypeFilter:
		child, err := e.eval(pl.Child)
		if err != nil {
			return nil, err
		}
		e.Stats.Joins++
		typed := e.DB.Rel(pl.Rel).TSet()
		out := NewRelation("")
		for _, t := range child.Tuples() {
			col := t.T
			if pl.OnF {
				col = t.F
			}
			if _, ok := typed[col]; ok {
				out.Add(t.F, t.T, t.V)
			}
		}
		e.Stats.TuplesOut += out.Len()
		return out, nil
	case ra.RecUnion:
		return e.recUnion(pl)
	}
	return nil, fmt.Errorf("rdb: unsupported plan %T", pl)
}

// identRel materializes R_id: (v, v, v.val) for every stored node, plus the
// virtual document root (0, 0) so that ε holds at the top-level context.
// A query answer of node 0 is filtered out at extraction time — the virtual
// root is a context, never a result.
func (e *Exec) identRel() *Relation {
	if e.ident == nil {
		r := NewRelation("Rid")
		r.Add(0, 0, "")
		for id, v := range e.DB.Vals {
			r.Add(id, id, v)
		}
		e.ident = r
	}
	return e.ident
}

// compose performs the path join π_{l.F, r.T, r.V}(l ⋈_{l.T=r.F} r).
func (e *Exec) compose(l, r *Relation) *Relation {
	e.Stats.Joins++
	out := NewRelation("")
	// Probe the smaller side's index.
	if l.Len() <= r.Len() {
		for _, lt := range l.Tuples() {
			for _, pos := range r.ByF(lt.T) {
				rt := r.Tuples()[pos]
				if out.Add(lt.F, rt.T, rt.V) {
					e.Stats.TuplesOut++
				}
			}
		}
	} else {
		for _, rt := range r.Tuples() {
			for _, pos := range l.ByT(rt.F) {
				lt := l.Tuples()[pos]
				if out.Add(lt.F, rt.T, rt.V) {
					e.Stats.TuplesOut++
				}
			}
		}
	}
	return out
}

// fix evaluates Φ(R) (Eq. 2): the transitive closure of the seed relation,
// with optional pushed start/end constraints (§5.2). Semi-naive: each
// iteration joins only the previous delta against the seed.
func (e *Exec) fix(pl ra.Fix) (*Relation, error) {
	seed, err := e.eval(pl.Seed)
	if err != nil {
		return nil, err
	}
	e.Stats.LFPs++
	var startSet, endSet map[int]struct{}
	if pl.Start != nil {
		s, err := e.eval(pl.Start)
		if err != nil {
			return nil, err
		}
		startSet = s.TSet()
	}
	if pl.End != nil {
		s, err := e.eval(pl.End)
		if err != nil {
			return nil, err
		}
		endSet = s.FSet()
	}

	out := NewRelation("")
	addOut := func(f, t int, v string) bool {
		if out.Add(f, t, v) {
			e.Stats.TuplesOut++
			return true
		}
		return false
	}
	// Path tracking (§5.2 "XML reconstruction"): the P attribute of a new
	// tuple concatenates the extending edge onto the witnessing path.
	track := pl.TrackPaths
	setSeedPath := func(t Tuple) {
		if track {
			out.SetPath(t.F, t.T, []int{t.T})
		}
	}
	extendPath := func(base Tuple, newT int) {
		if track {
			prev := out.PathOf(base.F, base.T)
			path := make([]int, len(prev)+1)
			copy(path, prev)
			path[len(prev)] = newT
			out.SetPath(base.F, newT, path)
		}
	}
	prependPath := func(newF int, base Tuple) {
		if track {
			prev := out.PathOf(base.F, base.T)
			path := make([]int, 0, len(prev)+1)
			path = append(path, base.F)
			path = append(path, prev...)
			out.SetPath(newF, base.T, path)
		}
	}

	switch {
	case startSet != nil:
		// Forward iteration from the constrained frontier:
		// C = R.F ∈ π_T(Start) ∧ R_{i-1}.T = R_0.F.
		var delta []Tuple
		for _, t := range seed.Tuples() {
			if _, ok := startSet[t.F]; ok {
				if addOut(t.F, t.T, t.V) {
					setSeedPath(t)
					delta = append(delta, t)
				}
			}
		}
		for len(delta) > 0 {
			e.Stats.LFPIters++
			e.Stats.Joins++
			var next []Tuple
			for _, d := range delta {
				for _, pos := range seed.ByF(d.T) {
					st := seed.Tuples()[pos]
					if addOut(d.F, st.T, st.V) {
						extendPath(d, st.T)
						next = append(next, Tuple{F: d.F, T: st.T, V: st.V})
					}
				}
			}
			e.Stats.Unions++
			delta = next
		}
		if endSet != nil {
			filtered := NewRelation("")
			for _, t := range out.Tuples() {
				if _, ok := endSet[t.T]; ok {
					filtered.Add(t.F, t.T, t.V)
					if track {
						filtered.SetPath(t.F, t.T, out.PathOf(t.F, t.T))
					}
				}
			}
			out = filtered
		}
	case endSet != nil:
		// Backward iteration: C = R.T ∈ π_F(End) ∧ R_{i-1}.F = R_0.T.
		var delta []Tuple
		for _, t := range seed.Tuples() {
			if _, ok := endSet[t.T]; ok {
				if addOut(t.F, t.T, t.V) {
					setSeedPath(t)
					delta = append(delta, t)
				}
			}
		}
		for len(delta) > 0 {
			e.Stats.LFPIters++
			e.Stats.Joins++
			var next []Tuple
			for _, d := range delta {
				for _, pos := range seed.ByT(d.F) {
					st := seed.Tuples()[pos]
					if addOut(st.F, d.T, d.V) {
						prependPath(st.F, d)
						next = append(next, Tuple{F: st.F, T: d.T, V: d.V})
					}
				}
			}
			e.Stats.Unions++
			delta = next
		}
	default:
		// Unconstrained transitive closure.
		delta := append([]Tuple(nil), seed.Tuples()...)
		for _, t := range delta {
			if addOut(t.F, t.T, t.V) {
				setSeedPath(t)
			}
		}
		for len(delta) > 0 {
			e.Stats.LFPIters++
			e.Stats.Joins++
			var next []Tuple
			for _, d := range delta {
				for _, pos := range seed.ByF(d.T) {
					st := seed.Tuples()[pos]
					if addOut(d.F, st.T, st.V) {
						extendPath(d, st.T)
						next = append(next, Tuple{F: d.F, T: st.T, V: st.V})
					}
				}
			}
			e.Stats.Unions++
			delta = next
		}
	}
	return out, nil
}

// recUnion evaluates the SQL'99-style multi-relation fixpoint of SQLGen-R.
// In edge mode (Pairs false) the result accumulates *edges* reachable from
// the seed exactly as in Fig 2 / Table 2; in pair mode it accumulates
// (origin, current) pairs, the product-automaton form. Either way each tuple
// carries an Rid tag and every iteration performs one join and one union per
// edge relation against the *entire accumulated relation*, per Eq. (1):
// R_i ← R_{i−1} ∪ (R_{i−1} ⋈ R_1) ∪ … ∪ (R_{i−1} ⋈ R_k). The operator is a
// black box ("the relation in the center keeps growing, but one can do
// little to optimize the operations inside the with…recursion expression",
// §3.1), so no delta optimization is applied — that asymmetry against the
// single-input Φ(R), which CONNECT BY evaluates level by level, is exactly
// the effect the paper's experiments measure.
func (e *Exec) recUnion(pl ra.RecUnion) (*Relation, error) {
	e.Stats.RecFixes++
	type tagged struct {
		t   Tuple
		tag string
	}
	tagIdx := map[string]int{}
	tagOf := func(tag string) int {
		i, ok := tagIdx[tag]
		if !ok {
			i = len(tagIdx)
			tagIdx[tag] = i
		}
		return i
	}
	type tkey struct {
		tag  int
		f, t int
	}
	seen := map[tkey]struct{}{}
	all := NewRelation("")
	result := all
	if pl.ResultTag != "" {
		result = NewRelation("")
	}
	// acc is the growing star-center relation R of Eq. (1)/Fig 2.
	var acc []tagged
	grew := false
	add := func(tag string, t Tuple) {
		k := tkey{tag: tagOf(tag), f: t.F, t: t.T}
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		all.Add(t.F, t.T, t.V)
		if pl.ResultTag != "" && tag == pl.ResultTag {
			result.Add(t.F, t.T, t.V)
		}
		e.Stats.TuplesOut++
		acc = append(acc, tagged{t: t, tag: tag})
		grew = true
	}
	for _, init := range pl.Init {
		r, err := e.eval(init.Plan)
		if err != nil {
			return nil, err
		}
		for _, t := range r.Tuples() {
			add(init.Tag, t)
		}
	}
	// Pre-evaluate edge relations (they are base tables in SQLGen-R plans).
	edgeRels := make([]*Relation, len(pl.Edges))
	for i, ed := range pl.Edges {
		r, err := e.eval(ed.Rel)
		if err != nil {
			return nil, err
		}
		edgeRels[i] = r
	}
	for grew = true; grew; {
		grew = false
		e.Stats.LFPIters++
		// One join + one union per edge relation against the whole of R:
		// the star-shaped body of Fig 2.
		snapshot := len(acc)
		for i, ed := range pl.Edges {
			e.Stats.Joins++
			e.Stats.Unions++
			rel := edgeRels[i]
			for j := 0; j < snapshot; j++ {
				d := acc[j]
				if d.tag != ed.FromTag {
					continue
				}
				for _, pos := range rel.ByF(d.t.T) {
					et := rel.Tuples()[pos]
					if pl.Pairs {
						// Keep the origin: (d.F, edge.T).
						add(ed.ToTag, Tuple{F: d.t.F, T: et.T, V: et.V})
					} else {
						// Fig 2: insert the edge's own (F, T).
						add(ed.ToTag, et)
					}
				}
			}
		}
	}
	return result, nil
}
