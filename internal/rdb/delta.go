package rdb

// Incremental view maintenance over translated programs. A ViewState
// materializes the output of every operator in a program's reachable plan
// tree and advances those materializations under document updates using the
// same semi-naive delta machinery the fixpoint executor runs internally —
// instead of re-running Φ from scratch, an insert seeds the closure's
// frontier with exactly the tuples the new edges admit, and a delete prunes
// whole subtrees out of every materialization via the document-order
// interval encoding.
//
// Maintainability is a property of the plan. Three independent classes:
//
//   - insertable: no Antijoin/Diff/RecUnion and no path tracking — the plan
//     is monotone, so an insert can only add tuples and per-operator delta
//     rules are exact. The store assigns fresh node IDs to inserted nodes
//     (IDs are never reused), which the rules rely on: an old tuple can
//     never newly enter a type relation or identity relation.
//   - deletable: insertable, no Semijoin, and no pushed end constraints.
//     Deleting a subtree removes exactly the tuples that touch a deleted
//     node: in this fragment every relation pairs an ancestor-side F with a
//     descendant-side T, so a tuple whose endpoints survive has its whole
//     witnessing path intact and every materialization stays exact after
//     pruning dead rows. A Semijoin breaks this — a surviving tuple can lose
//     its only witness in π_F(R) when the witness row's descendant side dies
//     — and a Fix/DescScan end constraint is the same semijoin in disguise,
//     as is any non-monotone operator.
//   - text-immune: no SelectVal — answers are node-ID sets and membership
//     never depends on a V attribute, so UpdateText is a no-op.
//
// Anything outside a class falls back to full re-evaluation (Rebuild), which
// diffs the fresh answer against the maintained one so subscribers still see
// exact per-epoch deltas. That is the DRed-style re-derivation fallback: a
// deleted tuple with possible alternate derivations (Semijoin witnesses) is
// re-derived by recomputation rather than counted.
//
// A ViewState is not safe for concurrent use; the ivm layer serializes all
// access through its maintainer goroutine.

import (
	"errors"
	"fmt"
	"sort"

	"xpath2sql/internal/ra"
)

// ErrNonIncremental reports that an update cannot be applied as a delta to
// this view — the caller should fall back to Rebuild. After any error from
// ApplyInsert/ApplyDelete the materializations may be partially advanced and
// Rebuild is required before further deltas.
var ErrNonIncremental = errors.New("rdb: view not incrementally maintainable for this update")

// DeltaEdge is one base-relation row added by an insert transaction, in
// exchange form.
type DeltaEdge struct {
	F, T int
	V    string
}

// BaseDelta names exactly what an insert transaction added: the new rows per
// stored relation and the new node IDs (all fresh — never previously used).
type BaseDelta struct {
	Rows   map[string][]DeltaEdge
	NewIDs []int
}

// ViewState is a standing query's materialized operator tree plus its
// maintained answer multiset. Build one with BuildViewState against a
// database snapshot, then advance it epoch by epoch with ApplyInsert /
// ApplyDelete / ApplyText, or recompute with Rebuild.
type ViewState struct {
	prog *ra.Program
	db   *DB
	ex   *Exec     // internal executor: compose/fixExpand kernels + stats
	syms *Interner // the shared interner every epoch must carry

	opaque     bool // no operator tree: maintained by Rebuild only
	insertable bool
	deletable  bool
	textImmune bool

	stmts  map[string]*viewStmt
	result *viewStmt

	// counts is the answer multiset: result-relation row count per T. Keys
	// with positive counts (minus the virtual root 0) are the answer.
	counts map[int32]int

	round uint64

	// DeltaStats accumulates the work performed by delta maintenance;
	// FullStats the work of full (re)builds. Their TuplesOut ratio is the
	// maintenance-vs-rerun economy the metrics endpoint reports.
	DeltaStats Stats
	FullStats  Stats
}

type viewStmt struct {
	name     string
	root     *viewNode
	visiting bool // cycle guard during build
}

// viewNode materializes one operator's output. Base and Temp nodes hold no
// relation of their own (Base reads the live stored relation, Temp aliases
// its statement's root).
type viewNode struct {
	plan ra.Plan
	kids []*viewNode
	stmt *viewStmt // Temp target

	out *Relation
	// aux, on a Fix with both constraints pushed, is the unfiltered
	// start-restricted closure; out is its end-filtered projection. The
	// closure is what delta rounds advance.
	aux *Relation
	// useFast marks a DescScan maintained through the interval kernel
	// (decided at build time); otherwise its Alt subtree is maintained.
	useFast bool

	delta *Relation // this round's genuinely-new rows
	round uint64
}

// BuildViewState materializes prog's operator tree against db and returns
// the maintainable view state. Plans outside the incremental fragment build
// in opaque mode: the answer is materialized but every update goes through
// Rebuild.
func BuildViewState(db *DB, prog *ra.Program) (*ViewState, error) {
	vs := &ViewState{
		prog:   prog,
		db:     db,
		ex:     &Exec{DB: db, Lazy: true, Parallelism: 1},
		syms:   db.Syms,
		stmts:  map[string]*viewStmt{},
		counts: map[int32]int{},
	}
	vs.classify()
	if vs.insertable {
		st, err := vs.buildStmt(prog.Result)
		if errors.Is(err, ErrNonIncremental) {
			vs.opaque = true
			vs.insertable, vs.deletable = false, false
		} else if err != nil {
			return nil, err
		} else {
			vs.result = st
		}
	} else {
		vs.opaque = true
	}
	if vs.opaque {
		if err := vs.rebuildOpaque(); err != nil {
			return nil, err
		}
		return vs, nil
	}
	snap := vs.ex.Stats
	if err := vs.evalStmt(vs.result); err != nil {
		if !errors.Is(err, ErrNonIncremental) {
			return nil, err
		}
		vs.degradeToOpaque()
		if err := vs.rebuildOpaque(); err != nil {
			return nil, err
		}
		return vs, nil
	}
	vs.FullStats = addDelta(vs.FullStats, vs.ex.Stats.Minus(snap))
	vs.refreshCounts()
	return vs, nil
}

// degradeToOpaque abandons the operator tree: the view stays correct but
// every update goes through Rebuild.
func (vs *ViewState) degradeToOpaque() {
	vs.opaque = true
	vs.insertable, vs.deletable = false, false
	vs.stmts, vs.result = nil, nil
}

// Insertable reports whether InsertSubtree updates apply as deltas.
func (vs *ViewState) Insertable() bool { return vs.insertable }

// Deletable reports whether DeleteSubtree updates apply as subtree pruning.
func (vs *ViewState) Deletable() bool { return vs.deletable }

// TextImmune reports whether UpdateText updates are no-ops for this view.
func (vs *ViewState) TextImmune() bool { return vs.textImmune }

// AnswerIDs returns the maintained answer: ascending node IDs, virtual root
// excluded — identical to executing the program and extracting IDs.
func (vs *ViewState) AnswerIDs() []int {
	out := make([]int, 0, len(vs.counts))
	for t, c := range vs.counts {
		if c > 0 && t != 0 {
			out = append(out, int(t))
		}
	}
	sort.Ints(out)
	return out
}

// classify walks every plan reachable from the result statement and derives
// the view's maintainability classes.
func (vs *ViewState) classify() {
	vs.insertable, vs.deletable, vs.textImmune = true, true, true
	seen := map[string]bool{}
	var walkStmt func(name string)
	var walk func(p ra.Plan)
	walkStmt = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		if pl := vs.prog.Lookup(name); pl != nil {
			walk(pl)
		}
	}
	walk = func(p ra.Plan) {
		switch p := p.(type) {
		case ra.Base, ra.Ident, ra.RootSeed:
		case ra.Temp:
			walkStmt(p.Name)
		case ra.IdentOf:
			if p.OnF {
				// (f, f) rows keep an existential witness on the child's F
				// column; the witness row can die (descendant side deleted)
				// while f stays alive. The OnT projection is safe: t alive
				// implies its ancestor-side f is alive too.
				vs.deletable = false
			}
			walk(p.Child)
		case ra.Compose:
			walk(p.L)
			walk(p.R)
		case ra.UnionAll:
			for _, k := range p.Kids {
				walk(k)
			}
		case ra.Fix:
			if p.TrackPaths {
				vs.insertable, vs.deletable = false, false
			}
			if p.End != nil {
				// An end constraint is a semijoin on π_F(end): an alive
				// closure node can lose its last witness when the witness
				// row's descendant side dies, so subtree pruning alone is
				// not exact.
				vs.deletable = false
			}
			walk(p.Seed)
			if p.Start != nil {
				walk(p.Start)
			}
			if p.End != nil {
				walk(p.End)
			}
		case ra.SelectVal:
			vs.textImmune = false
			walk(p.Child)
		case ra.SelectRoot:
			walk(p.Child)
		case ra.Semijoin:
			vs.deletable = false
			walk(p.L)
			walk(p.R)
		case ra.Antijoin:
			vs.insertable, vs.deletable = false, false
			walk(p.L)
			walk(p.R)
		case ra.Diff:
			vs.insertable, vs.deletable = false, false
			walk(p.L)
			walk(p.R)
		case ra.TypeFilter:
			walk(p.Child)
		case ra.DescScan:
			if p.End != nil {
				vs.deletable = false // see ra.Fix: π_F(end) witness loss
			}
			walk(p.Alt)
			if p.Start != nil {
				walk(p.Start)
			}
			if p.End != nil {
				walk(p.End)
			}
		case ra.RecUnion:
			vs.insertable, vs.deletable = false, false
			for _, t := range p.Init {
				walk(t.Plan)
			}
			for _, ed := range p.Edges {
				walk(ed.Rel)
			}
		default:
			vs.insertable, vs.deletable, vs.textImmune = false, false, false
		}
	}
	walkStmt(vs.prog.Result)
}

// --- tree construction ---------------------------------------------------

func (vs *ViewState) buildStmt(name string) (*viewStmt, error) {
	if st, ok := vs.stmts[name]; ok {
		if st.visiting {
			return nil, fmt.Errorf("rdb: cyclic statement reference %q", name)
		}
		return st, nil
	}
	pl := vs.prog.Lookup(name)
	if pl == nil {
		return nil, fmt.Errorf("rdb: unknown statement %q", name)
	}
	st := &viewStmt{name: name, visiting: true}
	vs.stmts[name] = st
	root, err := vs.buildNode(pl)
	if err != nil {
		return nil, err
	}
	st.root = root
	st.visiting = false
	return st, nil
}

func (vs *ViewState) buildNode(pl ra.Plan) (*viewNode, error) {
	n := &viewNode{plan: pl}
	addKid := func(p ra.Plan) error {
		k, err := vs.buildNode(p)
		if err != nil {
			return err
		}
		n.kids = append(n.kids, k)
		return nil
	}
	switch pl := pl.(type) {
	case ra.Base, ra.Ident, ra.RootSeed:
	case ra.Temp:
		st, err := vs.buildStmt(pl.Name)
		if err != nil {
			return nil, err
		}
		n.stmt = st
	case ra.IdentOf:
		if err := addKid(pl.Child); err != nil {
			return nil, err
		}
	case ra.Compose:
		if err := addKid(pl.L); err != nil {
			return nil, err
		}
		if err := addKid(pl.R); err != nil {
			return nil, err
		}
	case ra.UnionAll:
		for _, k := range pl.Kids {
			if err := addKid(k); err != nil {
				return nil, err
			}
		}
	case ra.Fix:
		if pl.TrackPaths {
			return nil, ErrNonIncremental
		}
		if err := addKid(pl.Seed); err != nil {
			return nil, err
		}
		if pl.Start != nil {
			if err := addKid(pl.Start); err != nil {
				return nil, err
			}
		}
		if pl.End != nil {
			if err := addKid(pl.End); err != nil {
				return nil, err
			}
		}
	case ra.SelectVal:
		if err := addKid(pl.Child); err != nil {
			return nil, err
		}
	case ra.SelectRoot:
		if err := addKid(pl.Child); err != nil {
			return nil, err
		}
	case ra.Semijoin:
		if err := addKid(pl.L); err != nil {
			return nil, err
		}
		if err := addKid(pl.R); err != nil {
			return nil, err
		}
	case ra.TypeFilter:
		if err := addKid(pl.Child); err != nil {
			return nil, err
		}
	case ra.DescScan:
		// Decide the maintenance strategy now: through the interval kernel
		// when the database carries a matching encoding, else through the
		// fixpoint alternative subtree.
		n.useFast = vs.descFastUsable(pl)
		if !n.useFast {
			if err := addKid(pl.Alt); err != nil {
				return nil, err
			}
		}
		if pl.Start != nil {
			if err := addKid(pl.Start); err != nil {
				return nil, err
			}
		}
		if pl.End != nil {
			if err := addKid(pl.End); err != nil {
				return nil, err
			}
		}
	default:
		// Antijoin, Diff, RecUnion, unknown: not tree-maintainable.
		return nil, ErrNonIncremental
	}
	return n, nil
}

// descFastUsable mirrors descScanFast's gate: a matching DTD fingerprint, a
// valid encoding, and a buildable begin-sorted index over the To relation.
func (vs *ViewState) descFastUsable(pl ra.DescScan) bool {
	if vs.prog.DTDFP == "" || vs.prog.DTDFP != vs.db.DTDFP || !vs.db.HasIntervals() {
		return false
	}
	_, ok := vs.db.descIndexFor(vs.db.Rel(pl.To))
	return ok
}

// --- full evaluation -----------------------------------------------------

func (vs *ViewState) newRel() *Relation { return newRelation("", vs.syms) }

// nodeOut resolves a node's current output relation (live stored relation
// for Base, the statement root's output for Temp).
func (vs *ViewState) nodeOut(n *viewNode) *Relation {
	switch pl := n.plan.(type) {
	case ra.Base:
		return vs.db.Rel(pl.Rel)
	case ra.Temp:
		return vs.nodeOut(n.stmt.root)
	}
	return n.out
}

func (vs *ViewState) evalStmt(st *viewStmt) error {
	if st.root.evaluated() {
		return nil
	}
	return vs.evalNode(st.root)
}

func (n *viewNode) evaluated() bool {
	switch n.plan.(type) {
	case ra.Base:
		return true
	case ra.Temp:
		return n.stmt.root.evaluated()
	}
	return n.out != nil
}

// evalNode fully materializes n's output (post-order) against vs.db.
func (vs *ViewState) evalNode(n *viewNode) error {
	switch n.plan.(type) {
	case ra.Base:
		return nil
	case ra.Temp:
		return vs.evalStmt(n.stmt)
	}
	if n.out != nil {
		return nil
	}
	for _, k := range n.kids {
		if err := vs.evalNode(k); err != nil {
			return err
		}
	}
	ex := vs.ex
	switch pl := n.plan.(type) {
	case ra.Ident:
		out := vs.newRel()
		out.grow(len(vs.db.Vals) + 1)
		out.addRow(row{})
		for id := range vs.db.Vals {
			out.addRow(row{f: int32(id), t: int32(id), v: vs.valSym(id)})
		}
		ex.Stats.TuplesOut += out.Len()
		n.out = out
	case ra.IdentOf:
		child := vs.nodeOut(n.kids[0])
		out := vs.newRel()
		for i := range child.rows {
			if child.isDead(i) {
				continue
			}
			id := child.rows[i].t
			if pl.OnF {
				id = child.rows[i].f
			}
			out.addRow(row{f: id, t: id, v: vs.valSym(int(id))})
		}
		ex.Stats.TuplesOut += out.Len()
		n.out = out
	case ra.Compose:
		out, err := ex.compose(vs.nodeOut(n.kids[0]), vs.nodeOut(n.kids[1]))
		if err != nil {
			return err
		}
		n.out = out
	case ra.UnionAll:
		out := vs.newRel()
		for i, k := range n.kids {
			if i > 0 {
				ex.Stats.Unions++
			}
			kr := vs.nodeOut(k)
			for j := range kr.rows {
				if kr.isDead(j) {
					continue
				}
				if out.addFrom(kr, kr.rows[j]) {
					ex.Stats.TuplesOut++
				}
			}
		}
		n.out = out
	case ra.Fix:
		return vs.evalFix(n, pl)
	case ra.SelectVal:
		child := vs.nodeOut(n.kids[0])
		out := vs.newRel()
		if sym, ok := child.symOf(pl.Val); ok {
			for i := range child.rows {
				if !child.isDead(i) && child.rows[i].v == sym {
					out.addFrom(child, child.rows[i])
				}
			}
		}
		ex.Stats.TuplesOut += out.Len()
		n.out = out
	case ra.SelectRoot:
		child := vs.nodeOut(n.kids[0])
		out := vs.newRel()
		for i := range child.rows {
			if !child.isDead(i) && child.rows[i].f == 0 {
				out.addFrom(child, child.rows[i])
			}
		}
		ex.Stats.TuplesOut += out.Len()
		n.out = out
	case ra.Semijoin:
		l, r := vs.nodeOut(n.kids[0]), vs.nodeOut(n.kids[1])
		ex.Stats.Joins++
		wit := r.fIndex()
		out := vs.newRel()
		for i := range l.rows {
			if !l.isDead(i) && wit.contains(l.rows[i].t) {
				out.addFrom(l, l.rows[i])
			}
		}
		ex.Stats.TuplesOut += out.Len()
		n.out = out
	case ra.RootSeed:
		out := vs.newRel()
		out.addRow(row{})
		n.out = out
	case ra.TypeFilter:
		child := vs.nodeOut(n.kids[0])
		ex.Stats.Joins++
		typed := vs.db.Rel(pl.Rel).tIndex()
		out := vs.newRel()
		for i := range child.rows {
			if child.isDead(i) {
				continue
			}
			w := child.rows[i]
			col := w.t
			if pl.OnF {
				col = w.f
			}
			if typed.contains(col) {
				out.addFrom(child, w)
			}
		}
		ex.Stats.TuplesOut += out.Len()
		n.out = out
	case ra.DescScan:
		return vs.evalDescScan(n, pl)
	default:
		return fmt.Errorf("rdb: unsupported view plan %T", n.plan)
	}
	return nil
}

func (vs *ViewState) valSym(id int) int32 {
	v, ok := vs.db.Vals[id]
	if !ok || v == "" {
		return 0
	}
	return vs.syms.Intern(v)
}

// fixIndexes resolves a Fix node's pushed constraint indexes from the
// materialized constraint subtrees.
func (vs *ViewState) fixIndexes(n *viewNode, pl ra.Fix) (startIdx, endIdx *colIndex) {
	ki := 1
	if pl.Start != nil {
		startIdx = vs.nodeOut(n.kids[ki]).tIndex()
		ki++
	}
	if pl.End != nil {
		endIdx = vs.nodeOut(n.kids[ki]).fIndex()
	}
	return startIdx, endIdx
}

// evalFix materializes Φ(R) for a view. Unlike the executor's fix it never
// applies interval frontier pruning: with both constraints pushed the full
// start-restricted closure is kept as the node's aux relation (what delta
// rounds advance) and the end filter projects it into out.
func (vs *ViewState) evalFix(n *viewNode, pl ra.Fix) error {
	ex := vs.ex
	seed := vs.nodeOut(n.kids[0])
	startIdx, endIdx := vs.fixIndexes(n, pl)
	ex.Stats.LFPs++
	out := vs.newRel()
	var delta []row
	dir := fixFwd
	switch {
	case startIdx != nil:
		for i := range seed.rows {
			w := seed.rows[i]
			if !seed.isDead(i) && startIdx.contains(w.f) && out.addRow(w) {
				ex.Stats.TuplesOut++
				delta = append(delta, w)
			}
		}
	case endIdx != nil:
		dir = fixBwd
		for i := range seed.rows {
			w := seed.rows[i]
			if !seed.isDead(i) && endIdx.contains(w.t) && out.addRow(w) {
				ex.Stats.TuplesOut++
				delta = append(delta, w)
			}
		}
	default:
		for i := range seed.rows {
			w := seed.rows[i]
			if !seed.isDead(i) && out.addRow(w) {
				ex.Stats.TuplesOut++
				delta = append(delta, w)
			}
		}
	}
	var next []row
	var err error
	for len(delta) > 0 {
		ex.Stats.LFPIters++
		ex.Stats.Joins++
		if next, err = ex.fixExpand(seed, out, delta, next[:0], dir, false, nil); err != nil {
			return err
		}
		ex.Stats.Unions++
		delta, next = next, delta
	}
	if startIdx != nil && endIdx != nil {
		n.aux = out
		filtered := vs.newRel()
		for i := range out.rows {
			if endIdx.contains(out.rows[i].t) {
				filtered.addRow(out.rows[i])
			}
		}
		n.out = filtered
		return nil
	}
	n.out = out
	return nil
}

// descIndexes resolves a DescScan node's constraint indexes; kid layout is
// [Alt,] Start?, End? depending on useFast.
func (vs *ViewState) descIndexes(n *viewNode, pl ra.DescScan) (startIdx, endIdx *colIndex) {
	ki := 0
	if !n.useFast {
		ki = 1
	}
	if pl.Start != nil {
		startIdx = vs.nodeOut(n.kids[ki]).tIndex()
		ki++
	}
	if pl.End != nil {
		endIdx = vs.nodeOut(n.kids[ki]).fIndex()
	}
	return startIdx, endIdx
}

func (vs *ViewState) evalDescScan(n *viewNode, pl ra.DescScan) error {
	startIdx, endIdx := vs.descIndexes(n, pl)
	out := vs.newRel()
	if !n.useFast {
		alt := vs.nodeOut(n.kids[0])
		for i := range alt.rows {
			if alt.isDead(i) {
				continue
			}
			w := alt.rows[i]
			if startIdx != nil && !startIdx.contains(w.f) {
				continue
			}
			if endIdx != nil && !endIdx.contains(w.t) {
				continue
			}
			out.addFrom(alt, w)
		}
		vs.ex.Stats.TuplesOut += out.Len()
		n.out = out
		return nil
	}
	db := vs.db
	toIdx, ok := db.descIndexFor(db.Rel(pl.To))
	if !ok {
		return ErrNonIncremental
	}
	fromRel := db.Rel(pl.From)
	seen := map[int32]struct{}{}
	vs.ex.Stats.DescScans++
	for i := range fromRel.rows {
		if fromRel.isDead(i) {
			continue
		}
		x := fromRel.rows[i].t
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		if startIdx != nil && !startIdx.contains(x) {
			continue
		}
		iv, has := db.Interval(int(x))
		if !has {
			return ErrNonIncremental
		}
		jlo, jhi := toIdx.rangeOf(iv.Begin, iv.End)
		for j := jlo; j < jhi; j++ {
			t := toIdx.ids[j]
			if endIdx != nil && !endIdx.contains(t) {
				continue
			}
			if out.addRow(row{f: x, t: t, v: toIdx.vs[j]}) {
				vs.ex.Stats.TuplesOut++
			}
		}
	}
	n.out = out
	return nil
}

// refreshCounts recomputes the answer multiset from the result relation.
func (vs *ViewState) refreshCounts() {
	vs.counts = countRows(vs.resultRows())
}

// resultRows returns the result node's live rows.
func (vs *ViewState) resultRows() []row {
	r := vs.nodeOut(vs.result.root)
	if r.nDead == 0 {
		return r.rows
	}
	live := make([]row, 0, r.Len())
	for i := range r.rows {
		if !r.isDead(i) {
			live = append(live, r.rows[i])
		}
	}
	return live
}

func countRows(rows []row) map[int32]int {
	counts := make(map[int32]int, len(rows))
	for _, w := range rows {
		counts[w.t]++
	}
	return counts
}

// --- insert maintenance --------------------------------------------------

// ApplyInsert advances the view to newDB, which must be the epoch
// immediately following the one the view is at, produced by one
// InsertSubtree described by bd. It returns the node IDs that entered the
// answer, ascending. On any error the materializations may be inconsistent
// and the caller must Rebuild.
func (vs *ViewState) ApplyInsert(newDB *DB, bd BaseDelta) ([]int, error) {
	if vs.opaque || !vs.insertable {
		return nil, ErrNonIncremental
	}
	if newDB.Syms != vs.syms {
		return nil, ErrNonIncremental
	}
	vs.db = newDB
	vs.ex.DB = newDB
	vs.ex.ident = nil
	vs.round++
	snap := vs.ex.Stats
	d, err := vs.nodeDelta(vs.result.root, &bd)
	if err != nil {
		return nil, err
	}
	vs.DeltaStats = addDelta(vs.DeltaStats, vs.ex.Stats.Minus(snap))
	var added []int
	for _, w := range d.rows {
		c := vs.counts[w.t]
		vs.counts[w.t] = c + 1
		if c == 0 && w.t != 0 {
			added = append(added, int(w.t))
		}
	}
	sort.Ints(added)
	return added, nil
}

// foldInto adds every candidate row to out, returning the genuinely-new ones
// as the node's propagated delta.
func (vs *ViewState) foldInto(out *Relation, cand *Relation) *Relation {
	d := vs.newRel()
	for i := range cand.rows {
		if out.addRow(cand.rows[i]) {
			vs.ex.Stats.TuplesOut++
			d.addRow(cand.rows[i])
		}
	}
	return d
}

// nodeDelta computes (once per round, post-order) the genuinely-new rows of
// n's output under the insert and advances the materialization.
func (vs *ViewState) nodeDelta(n *viewNode, bd *BaseDelta) (*Relation, error) {
	if n.round == vs.round {
		return n.delta, nil
	}
	kd := make([]*Relation, len(n.kids))
	for i, k := range n.kids {
		d, err := vs.nodeDelta(k, bd)
		if err != nil {
			return nil, err
		}
		kd[i] = d
	}
	var d *Relation
	var err error
	switch pl := n.plan.(type) {
	case ra.Base:
		d = vs.newRel()
		for _, e := range bd.Rows[pl.Rel] {
			d.Add(e.F, e.T, e.V)
		}
	case ra.Temp:
		if d, err = vs.nodeDelta(n.stmt.root, bd); err != nil {
			return nil, err
		}
	case ra.Ident:
		cand := vs.newRel()
		for _, id := range bd.NewIDs {
			cand.addRow(row{f: int32(id), t: int32(id), v: vs.valSym(id)})
		}
		d = vs.foldInto(n.out, cand)
	case ra.IdentOf:
		cand := vs.newRel()
		for i := range kd[0].rows {
			id := kd[0].rows[i].t
			if pl.OnF {
				id = kd[0].rows[i].f
			}
			cand.addRow(row{f: id, t: id, v: vs.valSym(int(id))})
		}
		d = vs.foldInto(n.out, cand)
	case ra.Compose:
		// Δ(L∘R) = ΔL∘R ∪ L∘ΔR over the advanced child outputs.
		lOut, rOut := vs.nodeOut(n.kids[0]), vs.nodeOut(n.kids[1])
		d = vs.newRel()
		for _, pair := range [2][2]*Relation{{kd[0], rOut}, {lOut, kd[1]}} {
			if pair[0].Len() == 0 || pair[1].Len() == 0 {
				continue
			}
			c, cerr := vs.ex.compose(pair[0], pair[1])
			if cerr != nil {
				return nil, cerr
			}
			for i := range c.rows {
				if n.out.addRow(c.rows[i]) {
					vs.ex.Stats.TuplesOut++
					d.addRow(c.rows[i])
				}
			}
		}
	case ra.UnionAll:
		d = vs.newRel()
		for _, k := range kd {
			for i := range k.rows {
				if n.out.addRow(k.rows[i]) {
					vs.ex.Stats.TuplesOut++
					d.addRow(k.rows[i])
				}
			}
		}
	case ra.Fix:
		if d, err = vs.fixDelta(n, pl, kd); err != nil {
			return nil, err
		}
	case ra.SelectVal:
		cand := vs.newRel()
		if sym, ok := kd[0].symOf(pl.Val); ok {
			for i := range kd[0].rows {
				if kd[0].rows[i].v == sym {
					cand.addRow(kd[0].rows[i])
				}
			}
		}
		d = vs.foldInto(n.out, cand)
	case ra.SelectRoot:
		cand := vs.newRel()
		for i := range kd[0].rows {
			if kd[0].rows[i].f == 0 {
				cand.addRow(kd[0].rows[i])
			}
		}
		d = vs.foldInto(n.out, cand)
	case ra.Semijoin:
		// ΔL against all of R, plus all of L against ΔR's new witnesses:
		// an old L row can newly pass when a fresh row gives its T a first
		// witness in π_F(R).
		lOut, rOut := vs.nodeOut(n.kids[0]), vs.nodeOut(n.kids[1])
		vs.ex.Stats.Joins++
		cand := vs.newRel()
		wit := rOut.fIndex()
		for i := range kd[0].rows {
			if wit.contains(kd[0].rows[i].t) {
				cand.addRow(kd[0].rows[i])
			}
		}
		if kd[1].Len() > 0 {
			lIdx := lOut.tIndex()
			seen := map[int32]struct{}{}
			for i := range kd[1].rows {
				f := kd[1].rows[i].f
				if _, dup := seen[f]; dup {
					continue
				}
				seen[f] = struct{}{}
				snap, over := lIdx.lookup(f)
				for _, part := range [2][]int32{snap, over} {
					for _, pos := range part {
						cand.addRow(lOut.rows[pos])
					}
				}
			}
		}
		d = vs.foldInto(n.out, cand)
	case ra.RootSeed:
		d = vs.newRel()
	case ra.TypeFilter:
		vs.ex.Stats.Joins++
		typed := vs.db.Rel(pl.Rel).tIndex()
		cand := vs.newRel()
		for i := range kd[0].rows {
			w := kd[0].rows[i]
			col := w.t
			if pl.OnF {
				col = w.f
			}
			if typed.contains(col) {
				cand.addRow(w)
			}
		}
		d = vs.foldInto(n.out, cand)
	case ra.DescScan:
		if d, err = vs.descDelta(n, pl, kd, bd); err != nil {
			return nil, err
		}
	default:
		return nil, ErrNonIncremental
	}
	n.delta = d
	n.round = vs.round
	return d, nil
}

// fixDelta advances Φ(R) under an insert with delta-seeded semi-naive
// rounds: the new seed edges (prefixed by the already-known closure) and the
// newly admitted constraint nodes form the initial frontier, then the
// executor's fixExpand kernel iterates exactly as a from-scratch run would —
// but starting from a frontier proportional to the update, not the seed.
func (vs *ViewState) fixDelta(n *viewNode, pl ra.Fix, kd []*Relation) (*Relation, error) {
	ex := vs.ex
	seedOut := vs.nodeOut(n.kids[0])
	seedDelta := kd[0]
	var startDelta, endDelta *Relation
	ki := 1
	if pl.Start != nil {
		startDelta = kd[ki]
		ki++
	}
	if pl.End != nil {
		endDelta = kd[ki]
	}
	startIdx, endIdx := vs.fixIndexes(n, pl)
	// O is the closure the rounds advance: the aux relation when both
	// constraints are pushed (end filtering is projected afterwards).
	O := n.out
	if startIdx != nil && endIdx != nil {
		O = n.aux
	}
	ex.Stats.LFPs++
	var frontier, all []row
	collect := func(w row) {
		if O.addRow(w) {
			ex.Stats.TuplesOut++
			frontier = append(frontier, w)
			all = append(all, w)
		}
	}
	switch {
	case startIdx != nil:
		// New edges, prefixed by every known start-rooted path reaching
		// their F (the first-new-edge decomposition), plus the full
		// expansion frontier of newly admitted start nodes.
		for i := range seedDelta.rows {
			d := seedDelta.rows[i]
			if startIdx.contains(d.f) {
				collect(d)
			}
			snap, over := O.tIndex().lookup(d.f)
			for _, part := range [2][]int32{snap, over} {
				for _, pos := range part {
					o := O.rows[pos]
					collect(row{f: o.f, t: d.t, v: d.v})
				}
			}
		}
		if startDelta != nil && startDelta.Len() > 0 {
			sIdx := seedOut.fIndex()
			seen := map[int32]struct{}{}
			for i := range startDelta.rows {
				s := startDelta.rows[i].t
				if _, dup := seen[s]; dup {
					continue
				}
				seen[s] = struct{}{}
				snap, over := sIdx.lookup(s)
				for _, part := range [2][]int32{snap, over} {
					for _, pos := range part {
						collect(seedOut.rows[pos])
					}
				}
			}
		}
	case endIdx != nil:
		// Backward: new edges suffixed by known end-reaching paths from
		// their T, plus seed edges reaching newly admitted end nodes.
		for i := range seedDelta.rows {
			d := seedDelta.rows[i]
			if endIdx.contains(d.t) {
				collect(d)
			}
			snap, over := O.fIndex().lookup(d.t)
			for _, part := range [2][]int32{snap, over} {
				for _, pos := range part {
					o := O.rows[pos]
					collect(row{f: d.f, t: o.t, v: o.v})
				}
			}
		}
		if endDelta != nil && endDelta.Len() > 0 {
			sIdx := seedOut.tIndex()
			seen := map[int32]struct{}{}
			for i := range endDelta.rows {
				e := endDelta.rows[i].f
				if _, dup := seen[e]; dup {
					continue
				}
				seen[e] = struct{}{}
				snap, over := sIdx.lookup(e)
				for _, part := range [2][]int32{snap, over} {
					for _, pos := range part {
						collect(seedOut.rows[pos])
					}
				}
			}
		}
	default:
		for i := range seedDelta.rows {
			d := seedDelta.rows[i]
			collect(d)
			snap, over := O.tIndex().lookup(d.f)
			for _, part := range [2][]int32{snap, over} {
				for _, pos := range part {
					o := O.rows[pos]
					collect(row{f: o.f, t: d.t, v: d.v})
				}
			}
		}
	}
	dir := fixFwd
	if startIdx == nil && endIdx != nil {
		dir = fixBwd
	}
	delta := frontier
	var next []row
	var err error
	for len(delta) > 0 {
		ex.Stats.LFPIters++
		ex.Stats.Joins++
		if next, err = ex.fixExpand(seedOut, O, delta, next[:0], dir, false, nil); err != nil {
			return nil, err
		}
		ex.Stats.Unions++
		all = append(all, next...)
		delta, next = next, delta
	}
	if startIdx != nil && endIdx != nil {
		// Project the closure delta through the end filter, and admit the
		// already-closed tuples whose T newly became an end node.
		d := vs.newRel()
		addOut := func(w row) {
			if n.out.addRow(w) {
				ex.Stats.TuplesOut++
				d.addRow(w)
			}
		}
		for _, w := range all {
			if endIdx.contains(w.t) {
				addOut(w)
			}
		}
		if endDelta != nil && endDelta.Len() > 0 {
			aIdx := n.aux.tIndex()
			seen := map[int32]struct{}{}
			for i := range endDelta.rows {
				e := endDelta.rows[i].f
				if _, dup := seen[e]; dup {
					continue
				}
				seen[e] = struct{}{}
				snap, over := aIdx.lookup(e)
				for _, part := range [2][]int32{snap, over} {
					for _, pos := range part {
						addOut(n.aux.rows[pos])
					}
				}
			}
		}
		return d, nil
	}
	d := vs.newRel()
	for _, w := range all {
		d.addRow(w)
	}
	return d, nil
}

// descDelta advances a DescScan under an insert. On the interval path the
// candidates are all update-sized: new From sources answer their typed
// descendants with one range scan, new To nodes find their typed ancestors
// by walking the parent catalog, and newly admitted constraint nodes replay
// the same two shapes.
func (vs *ViewState) descDelta(n *viewNode, pl ra.DescScan, kd []*Relation, bd *BaseDelta) (*Relation, error) {
	startIdx, endIdx := vs.descIndexes(n, pl)
	var startDelta, endDelta *Relation
	ki := 0
	if !n.useFast {
		ki = 1
	}
	if pl.Start != nil {
		startDelta = kd[ki]
		ki++
	}
	if pl.End != nil {
		endDelta = kd[ki]
	}
	d := vs.newRel()
	add := func(w row) {
		if n.out.addRow(w) {
			vs.ex.Stats.TuplesOut++
			d.addRow(w)
		}
	}
	if !n.useFast {
		alt := vs.nodeOut(n.kids[0])
		altDelta := kd[0]
		for i := range altDelta.rows {
			w := altDelta.rows[i]
			if startIdx != nil && !startIdx.contains(w.f) {
				continue
			}
			if endIdx != nil && !endIdx.contains(w.t) {
				continue
			}
			add(w)
		}
		// Old pairs newly passing a grown constraint.
		if startDelta != nil && startDelta.Len() > 0 {
			newStarts := colSet(startDelta, false)
			for i := range alt.rows {
				w := alt.rows[i]
				if _, ok := newStarts[w.f]; !ok {
					continue
				}
				if endIdx != nil && !endIdx.contains(w.t) {
					continue
				}
				add(w)
			}
		}
		if endDelta != nil && endDelta.Len() > 0 {
			newEnds := colSet(endDelta, true)
			for i := range alt.rows {
				w := alt.rows[i]
				if _, ok := newEnds[w.t]; !ok {
					continue
				}
				if startIdx != nil && !startIdx.contains(w.f) {
					continue
				}
				add(w)
			}
		}
		return d, nil
	}
	db := vs.db
	if vs.prog.DTDFP == "" || vs.prog.DTDFP != db.DTDFP || !db.HasIntervals() {
		return nil, ErrNonIncremental
	}
	fromRel, toRel := db.Rel(pl.From), db.Rel(pl.To)
	var toIdx *descIndex
	scanDown := func(x int32) error {
		if toIdx == nil {
			idx, ok := db.descIndexFor(toRel)
			if !ok {
				return ErrNonIncremental
			}
			toIdx = idx
		}
		iv, has := db.Interval(int(x))
		if !has {
			return ErrNonIncremental
		}
		vs.ex.Stats.DescScans++
		jlo, jhi := toIdx.rangeOf(iv.Begin, iv.End)
		for j := jlo; j < jhi; j++ {
			t := toIdx.ids[j]
			if endIdx != nil && !endIdx.contains(t) {
				continue
			}
			add(row{f: x, t: t, v: toIdx.vs[j]})
		}
		return nil
	}
	walkUp := func(t int32) {
		fIdx := fromRel.tIndex()
		for anc := int32(db.ParentOf[int(t)]); anc != 0; anc = int32(db.ParentOf[int(anc)]) {
			if !fIdx.contains(anc) {
				continue
			}
			if startIdx != nil && !startIdx.contains(anc) {
				continue
			}
			add(row{f: anc, t: t, v: vs.valSym(int(t))})
		}
	}
	for _, e := range bd.Rows[pl.From] {
		x := int32(e.T)
		if startIdx != nil && !startIdx.contains(x) {
			continue
		}
		if err := scanDown(x); err != nil {
			return nil, err
		}
	}
	for _, e := range bd.Rows[pl.To] {
		t := int32(e.T)
		if endIdx != nil && !endIdx.contains(t) {
			continue
		}
		walkUp(t)
	}
	if startDelta != nil && startDelta.Len() > 0 {
		fIdx := fromRel.tIndex()
		for s := range colSet(startDelta, false) {
			if !fIdx.contains(s) {
				continue
			}
			if err := scanDown(s); err != nil {
				return nil, err
			}
		}
	}
	if endDelta != nil && endDelta.Len() > 0 {
		tIdx := toRel.tIndex()
		for t := range colSet(endDelta, true) {
			if !tIdx.contains(t) {
				continue
			}
			walkUp(t)
		}
	}
	return d, nil
}

// colSet returns the distinct F (onF) or T values of a relation's rows.
func colSet(r *Relation, onF bool) map[int32]struct{} {
	out := make(map[int32]struct{}, len(r.rows))
	for i := range r.rows {
		if onF {
			out[r.rows[i].f] = struct{}{}
		} else {
			out[r.rows[i].t] = struct{}{}
		}
	}
	return out
}

// --- delete maintenance --------------------------------------------------

// ApplyDelete advances the view to newDB, produced by one DeleteSubtree that
// removed the subtree rooted at root (deleted lists every removed node, in
// preorder; prevDB is the epoch the delete ran against). Every
// materialization is pruned of rows touching a deleted node — via interval
// containment against the previous epoch's encoding when available, the
// explicit ID set otherwise. It returns the node IDs that left the answer,
// ascending. On error the caller must Rebuild.
func (vs *ViewState) ApplyDelete(newDB, prevDB *DB, root int, deleted []int) ([]int, error) {
	if vs.opaque || !vs.deletable {
		return nil, ErrNonIncremental
	}
	if newDB.Syms != vs.syms {
		return nil, ErrNonIncremental
	}
	dead := deadTest(prevDB, root, deleted)
	// Rows removed from the result relation must be observed before memos
	// are replaced; when the result is a stored relation the previous
	// epoch's copy still holds them.
	resNode := resolveNode(vs.result.root)
	var removedRows []row
	if base, ok := resNode.plan.(ra.Base); ok {
		prev := prevDB.Rel(base.Rel)
		for i := range prev.rows {
			if prev.isDead(i) {
				continue
			}
			w := prev.rows[i]
			if dead(w.f) || dead(w.t) {
				removedRows = append(removedRows, w)
			}
		}
	}
	vs.db = newDB
	vs.ex.DB = newDB
	vs.ex.ident = nil
	vs.round++
	for _, st := range vs.stmts {
		var walk func(n *viewNode)
		walk = func(n *viewNode) {
			for _, k := range n.kids {
				walk(k)
			}
			if n.out != nil {
				n.out = vs.pruneRel(n.out, dead, n == resNode, &removedRows)
			}
			if n.aux != nil {
				n.aux = vs.pruneRel(n.aux, dead, false, nil)
			}
		}
		walk(st.root)
	}
	var removed []int
	for _, w := range removedRows {
		c := vs.counts[w.t] - 1
		if c <= 0 {
			delete(vs.counts, w.t)
			if w.t != 0 {
				removed = append(removed, int(w.t))
			}
		} else {
			vs.counts[w.t] = c
		}
	}
	sort.Ints(removed)
	return removed, nil
}

// resolveNode follows Temp aliases to the node owning the materialization.
func resolveNode(n *viewNode) *viewNode {
	for {
		if _, ok := n.plan.(ra.Temp); !ok {
			return n
		}
		n = n.stmt.root
	}
}

// deadTest returns a membership test for the deleted subtree: interval
// containment against the pre-delete encoding when it covers the subtree
// root, the explicit ID set otherwise. The virtual root (0) is never dead.
func deadTest(prevDB *DB, root int, deleted []int) func(int32) bool {
	if prevDB != nil {
		if rootIv, ok := prevDB.Interval(root); ok {
			r32 := int32(root)
			return func(id int32) bool {
				if id == r32 {
					return true
				}
				iv, has := prevDB.Interval(int(id))
				return has && rootIv.Begin < iv.Begin && iv.Begin < rootIv.End
			}
		}
	}
	set := make(map[int32]struct{}, len(deleted))
	for _, id := range deleted {
		set[int32(id)] = struct{}{}
	}
	return func(id int32) bool {
		_, ok := set[id]
		return ok
	}
}

// pruneRel removes rows touching a deleted node. Untouched relations are
// returned as-is (keeping their indexes warm); touched ones are rebuilt
// compacted.
func (vs *ViewState) pruneRel(r *Relation, dead func(int32) bool, collect bool, removed *[]row) *Relation {
	nDead := 0
	for i := range r.rows {
		if r.isDead(i) {
			continue
		}
		w := r.rows[i]
		if dead(w.f) || dead(w.t) {
			nDead++
		}
	}
	if nDead == 0 {
		return r
	}
	out := vs.newRel()
	out.grow(r.Len() - nDead)
	for i := range r.rows {
		if r.isDead(i) {
			continue
		}
		w := r.rows[i]
		if dead(w.f) || dead(w.t) {
			if collect {
				*removed = append(*removed, w)
			}
			continue
		}
		out.addRow(w)
	}
	return out
}

// --- text updates --------------------------------------------------------

// ApplyText advances the view to newDB after one UpdateText. For text-
// immune views (no value selection anywhere in the plan) answers cannot
// change and the materializations stay valid as ID sets, so this is a
// repoint; otherwise the caller must Rebuild.
func (vs *ViewState) ApplyText(newDB *DB) error {
	if !vs.textImmune {
		return ErrNonIncremental
	}
	if !vs.opaque && newDB.Syms != vs.syms {
		return ErrNonIncremental
	}
	vs.db = newDB
	vs.ex.DB = newDB
	vs.ex.ident = nil
	return nil
}

// --- full rebuild --------------------------------------------------------

// Rebuild discards every materialization, re-evaluates the program against
// newDB from scratch and diffs the fresh answer against the maintained one.
// It returns the answer IDs that entered and left, ascending — the fallback
// path for non-incremental views and updates, equivalent to (but cheaper
// than) re-registering the view.
func (vs *ViewState) Rebuild(newDB *DB) (added, removed []int, err error) {
	old := vs.counts
	vs.db = newDB
	vs.ex.DB = newDB
	vs.ex.ident = nil
	vs.ex.env = nil
	vs.round++
	if vs.opaque || newDB.Syms != vs.syms {
		if !vs.opaque {
			// The interner changed under a tree view (not a store epoch):
			// degrade rather than mix symbol spaces.
			vs.degradeToOpaque()
		}
		if err := vs.rebuildOpaque(); err != nil {
			return nil, nil, err
		}
	} else {
		for _, st := range vs.stmts {
			var clearNode func(n *viewNode)
			clearNode = func(n *viewNode) {
				for _, k := range n.kids {
					clearNode(k)
				}
				n.out, n.aux, n.delta = nil, nil, nil
			}
			clearNode(st.root)
		}
		snap := vs.ex.Stats
		if err := vs.evalStmt(vs.result); err != nil {
			if !errors.Is(err, ErrNonIncremental) {
				return nil, nil, err
			}
			vs.degradeToOpaque()
			if err := vs.rebuildOpaque(); err != nil {
				return nil, nil, err
			}
		} else {
			vs.FullStats = addDelta(vs.FullStats, vs.ex.Stats.Minus(snap))
			vs.refreshCounts()
		}
	}
	return diffCounts(old, vs.counts)
}

// rebuildOpaque recomputes an opaque view's answer with a fresh executor.
func (vs *ViewState) rebuildOpaque() error {
	ex := &Exec{DB: vs.db, Lazy: true, Parallelism: 1}
	rel, err := ex.Run(vs.prog)
	if err != nil {
		return err
	}
	vs.FullStats = addDelta(vs.FullStats, ex.Stats)
	live := rel.rows
	if rel.nDead > 0 {
		live = make([]row, 0, rel.Len())
		for i := range rel.rows {
			if !rel.isDead(i) {
				live = append(live, rel.rows[i])
			}
		}
	}
	vs.counts = countRows(live)
	return nil
}

// diffCounts returns the answer IDs entering and leaving between two answer
// multisets, ascending, virtual root excluded.
func diffCounts(old, new map[int32]int) (added, removed []int, err error) {
	for t, c := range new {
		if c > 0 && t != 0 {
			if oc := old[t]; oc <= 0 {
				added = append(added, int(t))
			}
		}
	}
	for t, c := range old {
		if c > 0 && t != 0 {
			if nc := new[t]; nc <= 0 {
				removed = append(removed, int(t))
			}
		}
	}
	sort.Ints(added)
	sort.Ints(removed)
	return added, removed, nil
}

// addDelta accumulates b into a fieldwise (Stats has no Add method variant
// returning a value for struct fields used here).
func addDelta(a, b Stats) Stats {
	a.Joins += b.Joins
	a.Unions += b.Unions
	a.LFPs += b.LFPs
	a.LFPIters += b.LFPIters
	a.RecFixes += b.RecFixes
	a.TuplesOut += b.TuplesOut
	a.StmtsRun += b.StmtsRun
	a.Morsels += b.Morsels
	a.DescScans += b.DescScans
	return a
}
