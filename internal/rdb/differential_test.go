package rdb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"xpath2sql/internal/ra"
)

// The differential property tests: random ra.Programs run through the
// compact morsel-parallel engine (serial, intra-operator parallel with tiny
// forced morsels, and the statement-level scheduler) must produce (F, T, V)
// sets identical to the retained naive seed evaluator (naive.go).

// randDB builds a random database over nRels edge relations with node IDs
// in [1, n] and values from a tiny vocabulary.
func randDB(r *rand.Rand, n, nRels int) *DB {
	db := NewDB()
	vocab := []string{"", "a", "b", "c"}
	for ri := 0; ri < nRels; ri++ {
		name := fmt.Sprintf("R%d", ri)
		db.Rel(name) // declare even if it stays empty
		edges := r.Intn(3 * n)
		for i := 0; i < edges; i++ {
			f := r.Intn(n + 1) // 0 = virtual root allowed
			t := 1 + r.Intn(n)
			db.Insert(name, f, t, vocab[r.Intn(len(vocab))])
		}
	}
	return db
}

// randPlan generates a random plan of bounded depth over the database's
// relations and the program's earlier statements.
func randPlan(r *rand.Rand, depth, nRels int, temps []string) ra.Plan {
	baseRel := func() string { return fmt.Sprintf("R%d", r.Intn(nRels)) }
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			if len(temps) > 0 {
				return ra.Temp{Name: temps[r.Intn(len(temps))]}
			}
			return ra.Base{Rel: baseRel()}
		case 1:
			return ra.RootSeed{}
		default:
			return ra.Base{Rel: baseRel()}
		}
	}
	child := func() ra.Plan { return randPlan(r, depth-1, nRels, temps) }
	switch r.Intn(12) {
	case 0:
		return ra.Compose{L: child(), R: child()}
	case 1:
		kids := []ra.Plan{child(), child()}
		if r.Intn(2) == 0 {
			kids = append(kids, child())
		}
		return ra.UnionAll{Kids: kids}
	case 2:
		fx := ra.Fix{Seed: child(), TrackPaths: r.Intn(3) == 0}
		if r.Intn(2) == 0 {
			fx.Start = child()
		}
		if r.Intn(2) == 0 {
			fx.End = child()
		}
		return fx
	case 3:
		return ra.SelectVal{Child: child(), Val: []string{"a", "b", "z"}[r.Intn(3)]}
	case 4:
		return ra.SelectRoot{Child: child()}
	case 5:
		return ra.Semijoin{L: child(), R: child()}
	case 6:
		return ra.Antijoin{L: child(), R: child()}
	case 7:
		return ra.Diff{L: child(), R: child()}
	case 8:
		return ra.TypeFilter{Child: child(), Rel: baseRel(), OnF: r.Intn(2) == 0}
	case 9:
		return ra.IdentOf{Child: child(), OnF: r.Intn(2) == 0}
	case 10:
		rec := ra.RecUnion{
			Init: []ra.Tagged{{Tag: "a", Plan: child()}},
			Edges: []ra.RecEdge{
				{FromTag: "a", ToTag: "b", Rel: ra.Base{Rel: baseRel()}},
				{FromTag: "b", ToTag: "a", Rel: ra.Base{Rel: baseRel()}},
			},
			Pairs: r.Intn(2) == 0,
		}
		if r.Intn(2) == 0 {
			rec.ResultTag = "b"
		}
		return rec
	default:
		return ra.Ident{}
	}
}

func randProgram(r *rand.Rand, nRels int) *ra.Program {
	nStmts := 1 + r.Intn(4)
	var stmts []ra.Stmt
	var temps []string
	for i := 0; i < nStmts; i++ {
		name := fmt.Sprintf("s%d", i)
		stmts = append(stmts, ra.Stmt{Name: name, Plan: randPlan(r, 1+r.Intn(3), nRels, temps)})
		temps = append(temps, name)
	}
	return &ra.Program{Stmts: stmts, Result: temps[len(temps)-1]}
}

// canon renders a relation's content as a canonical sorted triple list.
func canonTuples(tuples []Tuple) []Tuple {
	out := append([]Tuple(nil), tuples...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].F != out[j].F {
			return out[i].F < out[j].F
		}
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return out[i].V < out[j].V
	})
	return out
}

func sameTuples(a, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	ca, cb := canonTuples(a), canonTuples(b)
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// forceTinyMorsels shrinks the morsel size so even the small differential
// databases cross the fan-out threshold and exercise the parallel kernels.
func forceTinyMorsels(t *testing.T) {
	t.Helper()
	old := morselRows
	morselRows = 4
	t.Cleanup(func() { morselRows = old })
}

func TestDifferentialRandomPrograms(t *testing.T) {
	forceTinyMorsels(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nRels := 1 + r.Intn(3)
		db := randDB(r, 3+r.Intn(20), nRels)
		p := randProgram(r, nRels)

		want, err := NewNaiveExec(db).Run(p)
		if err != nil {
			t.Logf("naive: %v", err)
			return false
		}

		serial, err := NewExec(db).Run(p)
		if err != nil {
			t.Logf("serial: %v", err)
			return false
		}
		par := NewExec(db)
		par.Parallelism = 4
		parRel, err := par.Run(p)
		if err != nil {
			t.Logf("parallel: %v", err)
			return false
		}
		sched, _, err := RunParallel(db, p, 4)
		if err != nil {
			t.Logf("scheduler: %v", err)
			return false
		}

		for name, got := range map[string]*Relation{"serial": serial, "morsel": parRel, "sched": sched} {
			if !sameTuples(want.Tuples(), got.Tuples()) {
				t.Logf("%s: tuples differ from naive (seed=%d)\nnaive: %v\n%s: %v",
					name, seed, canonTuples(want.Tuples()), name, canonTuples(got.Tuples()))
				return false
			}
			if !sameIDs(want.TIDs(), got.TIDs()) {
				t.Logf("%s: TIDs differ from naive (seed=%d)", name, seed)
				return false
			}
		}
		// The morsel engine must agree with the serial engine on operator
		// accounting (everything except the morsel counter itself).
		se, pe := NewExec(db), NewExec(db)
		pe.Parallelism = 4
		if _, err := se.Run(p); err != nil {
			return false
		}
		if _, err := pe.Run(p); err != nil {
			return false
		}
		ss, ps := se.Stats, pe.Stats
		ss.Morsels, ps.Morsels = 0, 0
		if ss != ps {
			t.Logf("stats differ (seed=%d): serial %+v parallel %+v", seed, ss, ps)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialFixPaths: constrained, path-tracking fixpoints on random
// graphs — identical (F, T) sets against the naive reference, and every
// tracked path must be a valid edge walk ending at T.
func TestDifferentialFixPaths(t *testing.T) {
	forceTinyMorsels(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(25)
		db := NewDB()
		for i := 0; i < 3*n; i++ {
			db.Insert("E", 1+r.Intn(n), 1+r.Intn(n), "")
		}
		for i := 0; i < 4; i++ {
			db.Insert("S", 1+r.Intn(n), 1+r.Intn(n), "")
		}
		fx := ra.Fix{Seed: ra.Base{Rel: "E"}, TrackPaths: true}
		switch r.Intn(4) {
		case 1:
			fx.Start = ra.Base{Rel: "S"}
		case 2:
			fx.End = ra.Base{Rel: "S"}
		case 3:
			fx.Start = ra.Base{Rel: "S"}
			fx.End = ra.Base{Rel: "S"}
		}
		p := &ra.Program{Stmts: []ra.Stmt{{Name: "result", Plan: fx}}, Result: "result"}

		want, err := NewNaiveExec(db).Run(p)
		if err != nil {
			return false
		}
		par := NewExec(db)
		par.Parallelism = 4
		got, err := par.Run(p)
		if err != nil {
			return false
		}
		if !sameTuples(want.Tuples(), got.Tuples()) {
			t.Logf("tuples differ (seed=%d)", seed)
			return false
		}
		edge := db.Rel("E")
		for _, tp := range got.Tuples() {
			path := got.PathOf(tp.F, tp.T)
			if len(path) == 0 || path[len(path)-1] != tp.T {
				t.Logf("bad path %v for %+v (seed=%d)", path, tp, seed)
				return false
			}
			prev := tp.F
			for _, node := range path {
				if !edge.Has(prev, node) {
					t.Logf("path %v uses non-edge %d→%d (seed=%d)", path, prev, node, seed)
					return false
				}
				prev = node
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
