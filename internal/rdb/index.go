package rdb

// colIndex maps a column value (F or T) to the positions of the tuples
// holding it. It replaces the seed's lazy map[int][]int32 indexes, which were
// discarded on every insert and rebuilt from scratch on the next probe.
//
// The index is built once over a snapshot of the relation, in CSR form when
// the key range is dense (offsets into one shared position array — the usual
// case, node IDs are dense) and as a single-build map when it is sparse.
// Tuples appended after the build — the delta rows a semi-naive fixpoint
// adds while probing — extend the index incrementally through a small
// overflow table instead of invalidating it.
type colIndex struct {
	// Dense (CSR) form: bucket k holds pos[offs[k]:offs[k+1]].
	offs []int32
	pos  []int32
	// Sparse form, used when max(key) ≫ tuple count.
	sparse map[int32][]int32
	// built is the number of leading tuples the snapshot covers; positions
	// appended afterwards live in extra.
	built    int
	extra    map[int32][]int32
	distinct int // number of distinct keys at build time
}

// denseLimit: build CSR when maxKey is within this factor of the tuple
// count; beyond it the offsets array would dominate memory.
const denseLimit = 8

// buildColIndex indexes rows on the F column (onF) or the T column.
func buildColIndex(rows []row, onF bool) *colIndex {
	idx := &colIndex{}
	buildColIndexInto(idx, rows, onF)
	return idx
}

// colKey returns the indexed column of one row.
func colKey(w row, onF bool) int32 {
	if onF {
		return w.f
	}
	return w.t
}

// buildColIndexInto (re)builds idx over rows, reusing its offs/pos backing
// arrays when their capacity suffices — the pooled-execution path rebuilds
// indexes over same-shaped temporaries every request, so after warmup a
// rebuild allocates nothing. The CSR placement runs fill-free: buckets are
// filled by advancing offs[k] itself, which afterwards holds bucket ends,
// and one shift restores the starts.
func buildColIndexInto(idx *colIndex, rows []row, onF bool) {
	n := len(rows)
	idx.built = n
	if idx.extra != nil {
		clear(idx.extra)
	}
	maxKey := int32(-1)
	sparse := false
	for i := 0; i < n; i++ {
		k := colKey(rows[i], onF)
		if k < 0 {
			sparse = true
			break
		}
		if k > maxKey {
			maxKey = k
		}
	}
	if !sparse && int(maxKey)+2 > denseLimit*n+64 {
		sparse = true
	}
	if sparse {
		m := idx.sparse
		if m == nil {
			m = make(map[int32][]int32, n)
		} else {
			clear(m)
		}
		for i := 0; i < n; i++ {
			k := colKey(rows[i], onF)
			m[k] = append(m[k], int32(i))
		}
		idx.sparse = m
		idx.offs, idx.pos = nil, nil
		idx.distinct = len(m)
		return
	}
	need := int(maxKey) + 2
	if cap(idx.offs) >= need {
		idx.offs = idx.offs[:need]
		for i := range idx.offs {
			idx.offs[i] = 0
		}
	} else {
		idx.offs = make([]int32, need)
	}
	offs := idx.offs
	for i := 0; i < n; i++ {
		offs[colKey(rows[i], onF)+1]++
	}
	distinct := 0
	for k := 1; k < len(offs); k++ {
		if offs[k] > 0 {
			distinct++
		}
		offs[k] += offs[k-1]
	}
	if cap(idx.pos) >= n {
		idx.pos = idx.pos[:n]
	} else {
		idx.pos = make([]int32, n)
	}
	pos := idx.pos
	for i := 0; i < n; i++ {
		k := colKey(rows[i], onF)
		pos[offs[k]] = int32(i)
		offs[k]++
	}
	copy(offs[1:], offs[:len(offs)-1])
	offs[0] = 0
	idx.sparse = nil
	idx.distinct = distinct
}

// lookup returns the snapshot positions and the overflow positions for a
// key, in insertion order (all overflow positions follow all snapshot
// positions). Callers iterate both slices; keeping them separate avoids an
// allocation on the hot probe path.
func (idx *colIndex) lookup(k int32) (snap, over []int32) {
	if idx.sparse != nil {
		snap = idx.sparse[k]
	} else if k >= 0 && int(k)+1 < len(idx.offs) {
		snap = idx.pos[idx.offs[k]:idx.offs[k+1]]
	}
	if idx.extra != nil {
		over = idx.extra[k]
	}
	return snap, over
}

// contains reports whether any tuple holds the key — the membership probe
// semijoin-style operators use instead of materializing a value set.
func (idx *colIndex) contains(k int32) bool {
	snap, over := idx.lookup(k)
	return len(snap) > 0 || len(over) > 0
}

// clone returns a copy sharing the immutable snapshot arrays; only the
// overflow table, which future adds mutate, is copied. The overflow slices
// are capped so an append by either side reallocates instead of aliasing.
func (idx *colIndex) clone() *colIndex {
	c := &colIndex{
		offs:     idx.offs,
		pos:      idx.pos,
		sparse:   idx.sparse,
		built:    idx.built,
		distinct: idx.distinct,
	}
	if len(idx.extra) > 0 {
		c.extra = make(map[int32][]int32, len(idx.extra))
		for k, v := range idx.extra {
			c.extra[k] = v[:len(v):len(v)]
		}
	}
	return c
}

// add extends the index with one appended tuple.
func (idx *colIndex) add(k int32, pos int32) {
	if idx.extra == nil {
		idx.extra = map[int32][]int32{}
	}
	idx.extra[k] = append(idx.extra[k], pos)
}
