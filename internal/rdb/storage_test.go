package rdb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"xpath2sql/internal/ra"
)

// TestIndexBuildCount is the regression test for the seed engine's
// invalidate-on-every-insert behavior: column indexes must be built at most
// once per column per relation snapshot, and interleaved inserts must extend
// them incrementally rather than trigger rebuilds.
func TestIndexBuildCount(t *testing.T) {
	r := NewRelation("r")
	for i := 0; i < 200; i++ {
		r.Add(i, i+1, "")
	}
	if got := r.IndexBuilds(); got != 0 {
		t.Fatalf("IndexBuilds before any probe = %d, want 0", got)
	}
	r.ByF(5)
	if got := r.IndexBuilds(); got != 1 {
		t.Fatalf("IndexBuilds after first ByF = %d, want 1", got)
	}
	// The seed engine rebuilt on the probe after every insert. Interleave
	// adds with probes: the count must not move.
	for i := 0; i < 100; i++ {
		r.Add(1000+i, i, "")
		if ps := r.ByF(1000 + i); len(ps) != 1 {
			t.Fatalf("ByF(%d) after incremental add = %d positions, want 1", 1000+i, len(ps))
		}
		r.ByF(i % 200)
	}
	if got := r.IndexBuilds(); got != 1 {
		t.Fatalf("IndexBuilds after 100 interleaved add/probe rounds = %d, want 1 (no rebuilds)", got)
	}
	r.ByT(3)
	if got := r.IndexBuilds(); got != 2 {
		t.Fatalf("IndexBuilds after first ByT = %d, want 2", got)
	}
	// Incremental extension must be visible through every read path.
	// T=3 so far: (2,3) from the first loop and (1003,3) from the second.
	r.Add(55, 3, "x")
	if ps := r.ByT(3); len(ps) != 3 {
		t.Fatalf("ByT(3) after extension = %d positions, want 3", len(ps))
	}
	if _, ok := r.TSet()[3]; !ok {
		t.Fatal("TSet missing incrementally indexed key")
	}
	if got := r.IndexBuilds(); got != 2 {
		t.Fatalf("IndexBuilds after extension probes = %d, want 2", got)
	}
}

// TestFixpointIndexBuilds asserts the delta loop of Φ never rebuilds the
// seed relation's indexes: one build per probed column for the whole
// fixpoint, regardless of iteration count.
func TestFixpointIndexBuilds(t *testing.T) {
	db := NewDB()
	for i := 1; i < 60; i++ {
		db.Insert("E", i, i+1, "")
	}
	p := &ra.Program{
		Stmts:  []ra.Stmt{{Name: "c", Plan: ra.Fix{Seed: ra.Base{Rel: "E"}}}},
		Result: "c",
	}
	out, err := NewExec(db).Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := 59 * 60 / 2; out.Len() != want {
		t.Fatalf("closure size = %d, want %d", out.Len(), want)
	}
	if got := db.Rel("E").IndexBuilds(); got > 2 {
		t.Fatalf("seed relation rebuilt indexes %d times during fixpoint, want ≤ 2 (one per column)", got)
	}
}

func TestTIDsSortedAndDeduped(t *testing.T) {
	r := NewRelation("r")
	ins := []int{9, 3, 3, 7, 1, 9, 4}
	for i, v := range ins {
		r.Add(i, v, "")
	}
	want := []int{1, 3, 4, 7, 9}
	for pass := 0; pass < 2; pass++ { // second pass hits the built index
		got := r.TIDs()
		if len(got) != len(want) {
			t.Fatalf("pass %d: TIDs = %v, want %v", pass, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pass %d: TIDs = %v, want %v", pass, got, want)
			}
		}
		r.ByT(3) // force index build between passes
	}
	// Extend after the index is built: merged result must stay sorted.
	r.Add(100, 2, "")
	r.Add(101, 8, "")
	got := r.TIDs()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("TIDs after incremental adds not sorted: %v", got)
	}
	if len(got) != 7 {
		t.Fatalf("TIDs after incremental adds = %v, want 7 distinct", got)
	}
}

func TestPairSet(t *testing.T) {
	s := newPairSet(0)
	r := rand.New(rand.NewSource(7))
	ref := map[uint64]struct{}{}
	for i := 0; i < 5000; i++ {
		f, tt := int32(r.Intn(300)), int32(r.Intn(300))
		k := packPair(f, tt)
		_, dup := ref[k]
		ref[k] = struct{}{}
		if isNew := s.insert(k); isNew == dup {
			t.Fatalf("insert(%d,%d) isNew=%v, want %v", f, tt, isNew, !dup)
		}
	}
	for k := range ref {
		if !s.has(k) {
			t.Fatalf("has(%d) = false after insert", k)
		}
	}
	if s.has(packPair(301, 301)) {
		t.Fatal("has reports never-inserted key")
	}
	// The all-ones key (sentinel) must be storable: (-1, -1) packs to it.
	k := packPair(-1, -1)
	if k != ^uint64(0) {
		t.Fatalf("packPair(-1,-1) = %#x, want all-ones", k)
	}
	if !s.insert(k) || !s.has(k) || s.insert(k) {
		t.Fatal("sentinel-colliding key not handled")
	}
	c := s.clone()
	if !c.has(packPair(-1, -1)) {
		t.Fatal("clone dropped sentinel-colliding key")
	}
	c.insert(packPair(999, 999))
	if s.has(packPair(999, 999)) {
		t.Fatal("clone shares storage with original")
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	if in.Intern("") != 0 {
		t.Fatal(`Intern("") != 0`)
	}
	a := in.Intern("alpha")
	if b := in.Intern("alpha"); b != a {
		t.Fatalf("re-intern gave %d, want %d", b, a)
	}
	if in.Str(a) != "alpha" {
		t.Fatalf("Str(%d) = %q", a, in.Str(a))
	}
	if id, ok := in.Lookup("alpha"); !ok || id != a {
		t.Fatalf("Lookup(alpha) = %d,%v", id, ok)
	}
	if _, ok := in.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) reported present")
	}
	done := make(chan int32, 8)
	for g := 0; g < 8; g++ {
		go func() { done <- in.Intern("shared") }()
	}
	first := <-done
	for g := 1; g < 8; g++ {
		if got := <-done; got != first {
			t.Fatalf("concurrent Intern returned %d and %d for same string", first, got)
		}
	}
}

func TestColIndexSparseKeys(t *testing.T) {
	r := NewRelation("r")
	r.Add(5_000_000, 7_000_000, "") // forces sparse layout: huge key, one row
	r.Add(1, 2, "")
	if ps := r.ByF(5_000_000); len(ps) != 1 {
		t.Fatalf("sparse ByF = %v", ps)
	}
	if ps := r.ByT(7_000_000); len(ps) != 1 {
		t.Fatalf("sparse ByT = %v", ps)
	}
	r.Add(5_000_000, 9, "x")
	if ps := r.ByF(5_000_000); len(ps) != 2 {
		t.Fatalf("sparse ByF after extension = %v", ps)
	}
	got := r.TIDs()
	want := []int{2, 9, 7_000_000}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("sparse TIDs = %v, want %v", got, want)
	}
}

func TestLoaderMatchesInsertLabeled(t *testing.T) {
	mk := func(load func(db *DB)) *DB {
		db := NewDB()
		load(db)
		return db
	}
	a := mk(func(db *DB) {
		for i := 0; i < 50; i++ {
			db.InsertLabeled("R", fmt.Sprintf("n%d", i%5), i, i+1, fmt.Sprintf("v%d", i%3))
		}
	})
	b := mk(func(db *DB) {
		ld := db.NewLoader()
		for i := 0; i < 50; i++ {
			ld.Insert("R", fmt.Sprintf("n%d", i%5), i, i+1, fmt.Sprintf("v%d", i%3))
		}
	})
	if !sameTuples(a.Rel("R").Tuples(), b.Rel("R").Tuples()) {
		t.Fatal("Loader produced different relation content than InsertLabeled")
	}
	if fmt.Sprint(a.Labels) != fmt.Sprint(b.Labels) || fmt.Sprint(a.Vals) != fmt.Sprint(b.Vals) {
		t.Fatal("Loader produced different node metadata than InsertLabeled")
	}
}

// TestMorselsEngage: above the size threshold, a parallel join must
// actually take the morsel path (a positive control for the differential
// tests, which only prove the two paths agree).
func TestMorselsEngage(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	db := NewDB()
	for i := 0; i < 20_000; i++ {
		db.Insert("L", r.Intn(10_000), 1+r.Intn(10_000), "")
		db.Insert("R", r.Intn(10_000), 1+r.Intn(10_000), "")
	}
	p := &ra.Program{Stmts: []ra.Stmt{{Name: "j", Plan: ra.Compose{L: ra.Base{Rel: "L"}, R: ra.Base{Rel: "R"}}}}, Result: "j"}
	ex := NewExec(db)
	ex.Parallelism = 4
	if _, err := ex.Run(p); err != nil {
		t.Fatal(err)
	}
	if ex.Stats.Morsels == 0 {
		t.Fatal("parallel join scanned 0 morsels")
	}
	serial := NewExec(db)
	if _, err := serial.Run(p); err != nil {
		t.Fatal(err)
	}
	if serial.Stats.Morsels != 0 {
		t.Fatalf("serial run charged %d morsels", serial.Stats.Morsels)
	}
}

// TestCrossInternerCopy: relations created outside a DB (private interner)
// must still compose correctly with DB relations — symbols are re-mapped
// through strings when interners differ.
func TestCrossInternerCopy(t *testing.T) {
	src := NewRelation("src")
	src.Add(1, 2, "hello")
	dst := NewDB().Rel("dst")
	for _, tp := range src.Tuples() {
		dst.Add(tp.F, tp.T, tp.V)
	}
	got := dst.Tuples()
	if len(got) != 1 || got[0].V != "hello" {
		t.Fatalf("cross-interner copy = %+v", got)
	}
}
