// Package rdb is the in-memory relational engine that stands in for the
// commercial RDBMS of the paper's experiments (IBM DB2 / Oracle). It stores
// the shredded edge relations R_A(F, T, V) and executes ra.Program plans,
// including the single-input least-fixpoint operator Φ(R) with pushed
// start/end constraints (§5.2) and the multi-relation SQL'99-style fixpoint
// used by the SQLGen-R baseline (§3.1).
//
// The engine uses semi-naive evaluation for both fixpoint flavors and hash
// joins throughout, and exposes execution statistics (join/union/LFP
// iteration counts, tuples produced) so benchmarks can report the cost
// drivers the paper discusses.
//
// Storage is compact: V strings are dictionary-encoded into int32 symbols by
// a DB-level Interner, tuples are stored as three int32 columns in one row
// array, (F, T) dedup runs through an open-addressing pair set, and the
// per-column indexes are CSR offset/position arrays built once per snapshot
// and extended incrementally as fixpoint deltas append rows. Operators may
// run morsel-parallel; see exec.go and morsel.go.
package rdb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Tuple is one row of an (F, T, V) relation: F is the parent ("from") node
// ID, T the node's own ID, V its text value. F == 0 encodes the virtual
// document root '_'. It is the exchange form used at the package boundary;
// internally rows hold an interned symbol instead of the string.
type Tuple struct {
	F, T int
	V    string
}

// row is the stored form of a tuple: three machine words of which the third
// is the interned V symbol.
type row struct {
	f, t, v int32
}

// Relation is a set of tuples, deduplicated on (F, T). V is functionally
// determined by T in every relation the translation produces, so (F, T)
// dedup is exact.
type Relation struct {
	Name string

	syms *Interner // shared with the owning DB; lazily private otherwise
	rows []row
	set  pairSet

	// Index snapshots are built lazily on first probe. The pointers are
	// atomic and the build is mutex-serialized because base relations are
	// shared read-only across concurrently executing queries (the server
	// path): the first probes may race to build. All other mutation
	// (addRow, incremental index extension) stays single-writer per the
	// execution model.
	idxF, idxT atomic.Pointer[colIndex]
	idxMu      sync.Mutex
	idxBuilds  atomic.Int32 // index snapshot builds performed (regression stat)

	// paths, when non-nil, holds the P attribute of §5.2: per (F, T) pair
	// the node sequence of one witnessing path (excluding F, including T).
	paths map[uint64][]int

	// dead marks tombstoned row positions (see Delete). Tombstones are a
	// private write-side state: a relation handed to query operators must be
	// compacted first (Tombstones() == 0), because operators scan rows and
	// probe index positions directly.
	dead  []bool
	nDead int

	// pooled marks a request-private temporary owned by an ExecState arena.
	// Pooled relations rebuild their indexes into retained scratch structs
	// (fScratch/tScratch) so a warm request's index builds allocate nothing;
	// shared relations keep allocating fresh snapshots, which concurrent
	// readers may hold indefinitely.
	pooled             bool
	fScratch, tScratch *colIndex
}

// NewRelation returns an empty relation with the given name. Relations
// created through a DB share its interner; standalone relations get a
// private one on first insert.
func NewRelation(name string) *Relation {
	return &Relation{Name: name}
}

// newRelation returns an empty relation sharing an interner, so symbols can
// be copied between relations without resolving strings.
func newRelation(name string, syms *Interner) *Relation {
	return &Relation{Name: name, syms: syms}
}

func (r *Relation) interner() *Interner {
	if r.syms == nil {
		r.syms = NewInterner()
	}
	return r.syms
}

// Add inserts (f, t, v), ignoring duplicates on (f, t). It reports whether
// the tuple was new.
func (r *Relation) Add(f, t int, v string) bool {
	var sym int32
	if v != "" {
		sym = r.interner().Intern(v)
	}
	return r.addRow(row{f: int32(f), t: int32(t), v: sym})
}

// addRow inserts a stored-form row whose v symbol is already in r's
// interner. It extends any built index incrementally instead of discarding
// it — the fix for the seed's invalidate-on-every-insert behavior.
func (r *Relation) addRow(w row) bool {
	if !r.set.insert(packPair(w.f, w.t)) {
		return false
	}
	pos := int32(len(r.rows))
	r.rows = append(r.rows, w)
	if idx := r.idxF.Load(); idx != nil {
		idx.add(w.f, pos)
	}
	if idx := r.idxT.Load(); idx != nil {
		idx.add(w.t, pos)
	}
	return true
}

// addFrom inserts the i-th row of src, translating the V symbol only when
// the two relations do not share an interner.
func (r *Relation) addFrom(src *Relation, w row) bool {
	if r.syms == src.syms || w.v == 0 {
		return r.addRow(w)
	}
	return r.Add(int(w.f), int(w.t), src.interner().Str(w.v))
}

// grow reserves capacity for about n additional tuples.
func (r *Relation) grow(n int) {
	if cap(r.rows)-len(r.rows) < n {
		rows := make([]row, len(r.rows), len(r.rows)+n)
		copy(rows, r.rows)
		r.rows = rows
	}
	if r.set.used+r.set.dels+n >= r.set.maxUsed {
		need := r.set.used + n
		s := newPairSet(need)
		s.hasMax = r.set.hasMax
		s.hasDel = r.set.hasDel
		for _, k := range r.set.slots {
			if k != pairEmpty && k != pairDeleted {
				s.insert(k)
			}
		}
		r.set = s
	}
}

// Has reports whether (f, t) is present.
func (r *Relation) Has(f, t int) bool {
	return r.set.has(packPair(int32(f), int32(t)))
}

// Len returns the live tuple count (tombstoned rows excluded).
func (r *Relation) Len() int { return len(r.rows) - r.nDead }

// valStr resolves a stored V symbol.
func (r *Relation) valStr(sym int32) string {
	if sym == 0 {
		return ""
	}
	return r.interner().Str(sym)
}

// symOf returns the symbol for v in r's interner, reporting whether any
// stored string equals it — a miss means a selection on v is empty.
func (r *Relation) symOf(v string) (int32, bool) {
	if v == "" {
		return 0, true
	}
	if r.syms == nil {
		return 0, false
	}
	return r.syms.Lookup(v)
}

// Tuples materializes the relation as exchange-form tuples, resolving V
// symbols to strings and skipping tombstoned rows. The result is a fresh
// slice in insertion order; operators never call this on a hot path.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, r.Len())
	for i, w := range r.rows {
		if r.isDead(i) {
			continue
		}
		out = append(out, Tuple{F: int(w.f), T: int(w.t), V: r.valStr(w.v)})
	}
	return out
}

// isDead reports whether row i is tombstoned; rows appended after the dead
// bitmap was sized are live by construction.
func (r *Relation) isDead(i int) bool {
	return r.nDead > 0 && i < len(r.dead) && r.dead[i]
}

// Delete tombstones the tuple (f, t), reporting whether it was present. The
// row stays in place (marked dead) until Compact; Has and Tuples reflect the
// deletion immediately, but scan/probe operators do not — callers must
// Compact before handing the relation to query execution. This is the
// write side of the store's copy-on-write epochs: deletes run on private
// clones and every published relation is compacted.
func (r *Relation) Delete(f, t int) bool {
	if !r.set.remove(packPair(int32(f), int32(t))) {
		return false
	}
	pos := -1
	for _, p := range r.ByT(t) {
		w := r.rows[p]
		if w.t == int32(t) && w.f == int32(f) && !r.isDead(int(p)) {
			pos = int(p)
			break
		}
	}
	if pos < 0 {
		// The pair set said present, so a live row must exist; scan as a
		// belt-and-braces fallback (e.g. an index keyed before a Compact).
		for i, w := range r.rows {
			if w.t == int32(t) && w.f == int32(f) && !r.isDead(i) {
				pos = i
				break
			}
		}
	}
	if pos < 0 {
		// Inconsistent set/rows state; undo the set removal.
		r.set.insert(packPair(int32(f), int32(t)))
		return false
	}
	if r.dead == nil {
		r.dead = make([]bool, len(r.rows))
	} else if len(r.dead) < len(r.rows) {
		r.dead = append(r.dead, make([]bool, len(r.rows)-len(r.dead))...)
	}
	r.dead[pos] = true
	r.nDead++
	if r.paths != nil {
		delete(r.paths, packPair(int32(f), int32(t)))
	}
	return true
}

// UpdateValue replaces the V attribute of the live tuple (f, t), reporting
// whether it was present. V is not indexed, so no index maintenance is
// needed; (F, T) identity is unchanged.
func (r *Relation) UpdateValue(f, t int, v string) bool {
	if !r.set.has(packPair(int32(f), int32(t))) {
		return false
	}
	var sym int32
	if v != "" {
		sym = r.interner().Intern(v)
	}
	for _, p := range r.ByT(t) {
		w := r.rows[p]
		if w.t == int32(t) && w.f == int32(f) && !r.isDead(int(p)) {
			r.rows[p].v = sym
			return true
		}
	}
	for i, w := range r.rows {
		if w.t == int32(t) && w.f == int32(f) && !r.isDead(i) {
			r.rows[i].v = sym
			return true
		}
	}
	return false
}

// ChildrenOf materializes the live tuples whose F attribute equals f, in
// insertion order — the child edges of node f in a stored edge relation.
func (r *Relation) ChildrenOf(f int) []Tuple {
	ps := r.ByF(f)
	out := make([]Tuple, 0, len(ps))
	for _, p := range ps {
		if r.isDead(int(p)) {
			continue
		}
		w := r.rows[p]
		out = append(out, Tuple{F: int(w.f), T: int(w.t), V: r.valStr(w.v)})
	}
	return out
}

// Tombstones reports the number of deleted-but-not-compacted rows.
func (r *Relation) Tombstones() int { return r.nDead }

// Compact rewrites the relation without its tombstoned rows, restoring the
// invariant query operators rely on (every stored row is live). Indexes are
// dropped and rebuilt lazily on the next probe; the pair set is rebuilt
// exactly sized.
func (r *Relation) Compact() {
	if r.nDead == 0 {
		return
	}
	live := make([]row, 0, len(r.rows)-r.nDead)
	for i, w := range r.rows {
		if !r.isDead(i) {
			live = append(live, w)
		}
	}
	r.rows = live
	r.dead, r.nDead = nil, 0
	set := newPairSet(len(live))
	for _, w := range live {
		set.insert(packPair(w.f, w.t))
	}
	r.set = set
	r.idxF.Store(nil)
	r.idxT.Store(nil)
}

// IndexBuilds reports how many index snapshot builds the relation has
// performed — the regression stat guarding against the seed behavior of
// discarding indexes on every insert and rebuilding them per probe.
func (r *Relation) IndexBuilds() int { return int(r.idxBuilds.Load()) }

// fIndex returns the F-column index, building the snapshot on first use.
func (r *Relation) fIndex() *colIndex {
	if idx := r.idxF.Load(); idx != nil {
		return idx
	}
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	if idx := r.idxF.Load(); idx != nil {
		return idx
	}
	var idx *colIndex
	if r.pooled {
		if r.fScratch == nil {
			r.fScratch = &colIndex{}
		}
		idx = r.fScratch
		buildColIndexInto(idx, r.rows, true)
	} else {
		idx = buildColIndex(r.rows, true)
	}
	r.idxBuilds.Add(1)
	r.idxF.Store(idx)
	return idx
}

// tIndex returns the T-column index, building the snapshot on first use.
func (r *Relation) tIndex() *colIndex {
	if idx := r.idxT.Load(); idx != nil {
		return idx
	}
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	if idx := r.idxT.Load(); idx != nil {
		return idx
	}
	var idx *colIndex
	if r.pooled {
		if r.tScratch == nil {
			r.tScratch = &colIndex{}
		}
		idx = r.tScratch
		buildColIndexInto(idx, r.rows, false)
	} else {
		idx = buildColIndex(r.rows, false)
	}
	r.idxBuilds.Add(1)
	r.idxT.Store(idx)
	return idx
}

// ByF returns the positions of tuples with the given F value, in insertion
// order. When rows were appended after the index snapshot the two parts are
// merged; hot paths use fIndex().lookup directly to avoid the copy.
func (r *Relation) ByF(f int) []int32 {
	snap, over := r.fIndex().lookup(int32(f))
	return mergedPositions(snap, over)
}

// ByT returns the positions of tuples with the given T value.
func (r *Relation) ByT(t int) []int32 {
	snap, over := r.tIndex().lookup(int32(t))
	return mergedPositions(snap, over)
}

func mergedPositions(snap, over []int32) []int32 {
	if len(over) == 0 {
		return snap
	}
	out := make([]int32, 0, len(snap)+len(over))
	out = append(out, snap...)
	return append(out, over...)
}

// FSet returns the distinct F values. The map is sized by the indexed
// distinct count when known, avoiding the seed's len(tuples) over-allocation
// for sets that are usually far smaller.
func (r *Relation) FSet() map[int]struct{} {
	out := make(map[int]struct{}, r.distinctHint(r.idxF.Load()))
	for i := range r.rows {
		out[int(r.rows[i].f)] = struct{}{}
	}
	return out
}

// TSet returns the distinct T values.
func (r *Relation) TSet() map[int]struct{} {
	out := make(map[int]struct{}, r.distinctHint(r.idxT.Load()))
	for i := range r.rows {
		out[int(r.rows[i].t)] = struct{}{}
	}
	return out
}

// distinctHint estimates the distinct-key count of a column: exact when its
// index snapshot exists and covers all rows, a fraction of the tuple count
// otherwise.
func (r *Relation) distinctHint(idx *colIndex) int {
	if idx != nil && idx.built == len(r.rows) {
		return idx.distinct
	}
	return len(r.rows)/4 + 8
}

// TIDs returns the sorted distinct T values: the answer node IDs when the
// relation is a query result. With a dense T index the keys come out of the
// CSR offsets already sorted, so no re-sort (or oversized map) is needed;
// callers must not sort the result again.
func (r *Relation) TIDs() []int {
	idx := r.tIndex()
	if idx.offs != nil {
		out := make([]int, 0, idx.distinct+len(idx.extra))
		for k := 0; k+1 < len(idx.offs); k++ {
			if idx.offs[k+1] > idx.offs[k] {
				out = append(out, k)
			}
		}
		if len(idx.extra) == 0 {
			return out
		}
		for k := range idx.extra {
			if int(k)+1 >= len(idx.offs) || idx.offs[k+1] == idx.offs[k] {
				out = append(out, int(k))
			}
		}
		sort.Ints(out)
		return out
	}
	out := make([]int, 0, len(idx.sparse)+len(idx.extra))
	for k := range idx.sparse {
		out = append(out, int(k))
	}
	for k := range idx.extra {
		if _, dup := idx.sparse[k]; !dup {
			out = append(out, int(k))
		}
	}
	sort.Ints(out)
	return out
}

// SetPath records the witnessing path for (f, t) (P attribute, §5.2).
func (r *Relation) SetPath(f, t int, path []int) {
	if r.paths == nil {
		r.paths = map[uint64][]int{}
	}
	r.paths[packPair(int32(f), int32(t))] = path
}

// PathOf returns the recorded witnessing path for (f, t), or nil.
func (r *Relation) PathOf(f, t int) []int {
	return r.paths[packPair(int32(f), int32(t))]
}

// Clone returns a deep copy sharing the interner. Tombstone state and built
// indexes are carried over: the index snapshot arrays are immutable once
// built (non-pooled relations never rebuild in place), so the clone shares
// them and copies only the overflow table its own appends will extend.
// Without this, every copy-on-write epoch pays an O(n) index rebuild on the
// first probe after a constant-size update.
func (r *Relation) Clone() *Relation {
	c := newRelation(r.Name, r.syms)
	c.rows = append([]row(nil), r.rows...)
	c.set = r.set.clone()
	if r.nDead > 0 {
		c.dead = append([]bool(nil), r.dead...)
		c.nDead = r.nDead
	}
	if !r.pooled {
		// Pooled relations rebuild indexes into scratch backings in place;
		// those may not be shared across lifetimes.
		if idx := r.idxF.Load(); idx != nil {
			c.idxF.Store(idx.clone())
		}
		if idx := r.idxT.Load(); idx != nil {
			c.idxT.Store(idx.clone())
		}
	}
	return c
}

// reset empties a pooled relation for reuse, retaining every capacity the
// previous request grew: the row array, the pair-set slot array, the path
// map buckets and the index scratch backings. The interner pointer is kept;
// ExecState drops the relation instead when it is rebound to another DB.
func (r *Relation) reset() {
	r.Name = ""
	r.rows = r.rows[:0]
	r.set.clear()
	r.idxF.Store(nil)
	r.idxT.Store(nil)
	if r.paths != nil {
		clear(r.paths)
	}
	r.dead, r.nDead = nil, 0
}

func (r *Relation) String() string {
	return fmt.Sprintf("%s(%d tuples)", r.Name, r.Len())
}

// DB is a shredded database: one stored relation per element type plus the
// node-value catalog used to materialize identity relations.
type DB struct {
	Rels map[string]*Relation
	// Syms dictionary-encodes every V string stored in the database; all
	// relations of the DB — stored and temporary — share it, so operator
	// pipelines move int32 symbols instead of strings.
	Syms *Interner
	// Vals maps every stored node ID to its text value; it defines the
	// domain of the R_id identity relation (§5.1).
	Vals map[int]string
	// Labels maps every stored node ID to its element type; it supports
	// XML reconstruction of query answers (§5.2).
	Labels map[int]string
	// ParentOf maps every stored node to its parent (0 for the root
	// element); with Labels it reconstructs paths without re-scanning.
	ParentOf map[int]int
	// DTDFP is the fingerprint of the DTD the document was shredded
	// against ("" when unknown). The interval fast path compares it with
	// the translated program's fingerprint: translations against a sub-DTD
	// under-approximate the descendant relation, so raw containment is only
	// sound when translation and shredding agree on the DTD.
	DTDFP string
	// ivs holds the document-order interval encoding (see intervals.go);
	// nil means no valid encoding. Atomic because rebuilds race readers.
	ivs atomic.Pointer[ivState]
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		Rels:     map[string]*Relation{},
		Syms:     NewInterner(),
		Vals:     map[int]string{},
		Labels:   map[int]string{},
		ParentOf: map[int]int{},
	}
}

// Rel returns the stored relation, creating an empty one on first use so
// element types without instances behave as empty relations.
func (db *DB) Rel(name string) *Relation {
	r, ok := db.Rels[name]
	if !ok {
		r = newRelation(name, db.Syms)
		db.Rels[name] = r
	}
	return r
}

// Insert adds a tuple to the named stored relation and records the node
// value in the catalog.
func (db *DB) Insert(rel string, f, t int, v string) {
	db.Rel(rel).Add(f, t, v)
	db.Vals[t] = v
	db.ParentOf[t] = f
}

// InsertLabeled is Insert plus the node's element type, enabling XML
// reconstruction of answers.
func (db *DB) InsertLabeled(rel, label string, f, t int, v string) {
	db.Insert(rel, f, t, v)
	db.Labels[t] = label
}

// NumNodes returns the number of stored nodes.
func (db *DB) NumNodes() int { return len(db.Vals) }

// Loader amortizes per-insert lookups for bulk shredding: it caches the
// relation handle per name and interns each value exactly once per tuple
// through the DB interner.
type Loader struct {
	db   *DB
	rels map[string]*Relation
}

// NewLoader returns a bulk loader for the database.
func (db *DB) NewLoader() *Loader {
	return &Loader{db: db, rels: map[string]*Relation{}}
}

// Insert is InsertLabeled through the loader's relation cache.
func (l *Loader) Insert(rel, label string, f, t int, v string) {
	r, ok := l.rels[rel]
	if !ok {
		r = l.db.Rel(rel)
		l.rels[rel] = r
	}
	var sym int32
	if v != "" {
		sym = l.db.Syms.Intern(v)
	}
	r.addRow(row{f: int32(f), t: int32(t), v: sym})
	l.db.Vals[t] = v
	l.db.ParentOf[t] = f
	if label != "" {
		l.db.Labels[t] = label
	}
}
