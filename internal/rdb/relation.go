// Package rdb is the in-memory relational engine that stands in for the
// commercial RDBMS of the paper's experiments (IBM DB2 / Oracle). It stores
// the shredded edge relations R_A(F, T, V) and executes ra.Program plans,
// including the single-input least-fixpoint operator Φ(R) with pushed
// start/end constraints (§5.2) and the multi-relation SQL'99-style fixpoint
// used by the SQLGen-R baseline (§3.1).
//
// The engine uses semi-naive evaluation for both fixpoint flavors and hash
// joins throughout, and exposes execution statistics (join/union/LFP
// iteration counts, tuples produced) so benchmarks can report the cost
// drivers the paper discusses.
package rdb

import (
	"fmt"
	"sort"
)

// Tuple is one row of an (F, T, V) relation: F is the parent ("from") node
// ID, T the node's own ID, V its text value. F == 0 encodes the virtual
// document root '_'.
type Tuple struct {
	F, T int
	V    string
}

// Relation is a set of tuples, deduplicated on (F, T). V is functionally
// determined by T in every relation the translation produces, so (F, T)
// dedup is exact.
type Relation struct {
	Name   string
	tuples []Tuple
	key    map[uint64]struct{}
	byF    map[int][]int32 // lazy index: F -> tuple positions
	byT    map[int][]int32 // lazy index: T -> tuple positions
	// paths, when non-nil, holds the P attribute of §5.2: per (F, T) pair
	// the node sequence of one witnessing path (excluding F, including T).
	paths map[uint64][]int
}

func tupleKey(f, t int) uint64 {
	return uint64(uint32(f))<<32 | uint64(uint32(t))
}

// NewRelation returns an empty relation with the given name.
func NewRelation(name string) *Relation {
	return &Relation{Name: name, key: map[uint64]struct{}{}}
}

// Add inserts (f, t, v), ignoring duplicates on (f, t). It reports whether
// the tuple was new.
func (r *Relation) Add(f, t int, v string) bool {
	k := tupleKey(f, t)
	if _, dup := r.key[k]; dup {
		return false
	}
	r.key[k] = struct{}{}
	r.tuples = append(r.tuples, Tuple{F: f, T: t, V: v})
	r.byF, r.byT = nil, nil // invalidate indexes
	return true
}

// Has reports whether (f, t) is present.
func (r *Relation) Has(f, t int) bool {
	_, ok := r.key[tupleKey(f, t)]
	return ok
}

// Len returns the tuple count.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the backing slice; callers must not modify it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// ByF returns the positions of tuples with the given F value.
func (r *Relation) ByF(f int) []int32 {
	if r.byF == nil {
		r.byF = map[int][]int32{}
		for i := range r.tuples {
			r.byF[r.tuples[i].F] = append(r.byF[r.tuples[i].F], int32(i))
		}
	}
	return r.byF[f]
}

// ByT returns the positions of tuples with the given T value.
func (r *Relation) ByT(t int) []int32 {
	if r.byT == nil {
		r.byT = map[int][]int32{}
		for i := range r.tuples {
			r.byT[r.tuples[i].T] = append(r.byT[r.tuples[i].T], int32(i))
		}
	}
	return r.byT[t]
}

// FSet returns the distinct F values.
func (r *Relation) FSet() map[int]struct{} {
	out := make(map[int]struct{}, len(r.tuples))
	for i := range r.tuples {
		out[r.tuples[i].F] = struct{}{}
	}
	return out
}

// TSet returns the distinct T values.
func (r *Relation) TSet() map[int]struct{} {
	out := make(map[int]struct{}, len(r.tuples))
	for i := range r.tuples {
		out[r.tuples[i].T] = struct{}{}
	}
	return out
}

// TIDs returns the sorted distinct T values: the answer node IDs when the
// relation is a query result.
func (r *Relation) TIDs() []int {
	set := r.TSet()
	out := make([]int, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// SetPath records the witnessing path for (f, t) (P attribute, §5.2).
func (r *Relation) SetPath(f, t int, path []int) {
	if r.paths == nil {
		r.paths = map[uint64][]int{}
	}
	r.paths[tupleKey(f, t)] = path
}

// PathOf returns the recorded witnessing path for (f, t), or nil.
func (r *Relation) PathOf(f, t int) []int {
	return r.paths[tupleKey(f, t)]
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.Name)
	c.tuples = append([]Tuple(nil), r.tuples...)
	for k := range r.key {
		c.key[k] = struct{}{}
	}
	return c
}

func (r *Relation) String() string {
	return fmt.Sprintf("%s(%d tuples)", r.Name, len(r.tuples))
}

// DB is a shredded database: one stored relation per element type plus the
// node-value catalog used to materialize identity relations.
type DB struct {
	Rels map[string]*Relation
	// Vals maps every stored node ID to its text value; it defines the
	// domain of the R_id identity relation (§5.1).
	Vals map[int]string
	// Labels maps every stored node ID to its element type; it supports
	// XML reconstruction of query answers (§5.2).
	Labels map[int]string
	// ParentOf maps every stored node to its parent (0 for the root
	// element); with Labels it reconstructs paths without re-scanning.
	ParentOf map[int]int
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{Rels: map[string]*Relation{}, Vals: map[int]string{}, Labels: map[int]string{}, ParentOf: map[int]int{}}
}

// Rel returns the stored relation, creating an empty one on first use so
// element types without instances behave as empty relations.
func (db *DB) Rel(name string) *Relation {
	r, ok := db.Rels[name]
	if !ok {
		r = NewRelation(name)
		db.Rels[name] = r
	}
	return r
}

// Insert adds a tuple to the named stored relation and records the node
// value in the catalog.
func (db *DB) Insert(rel string, f, t int, v string) {
	db.Rel(rel).Add(f, t, v)
	db.Vals[t] = v
	db.ParentOf[t] = f
}

// InsertLabeled is Insert plus the node's element type, enabling XML
// reconstruction of answers.
func (db *DB) InsertLabeled(rel, label string, f, t int, v string) {
	db.Insert(rel, f, t, v)
	db.Labels[t] = label
}

// NumNodes returns the number of stored nodes.
func (db *DB) NumNodes() int { return len(db.Vals) }
