package rdb

import (
	"fmt"
	"math/rand"
	"testing"

	"xpath2sql/internal/ra"
)

// The pooled execution-state tests: an ExecState reused across requests must
// be observationally identical to a fresh Exec per request, and the warm
// serial path must not allocate beyond the arena contract.

// TestPooledExecDifferential reuses one pooled state across 1k randomized
// programs and databases, comparing every answer against a fresh executor's.
// Reuse patterns are randomized too: the state is sometimes released and
// re-acquired, sometimes rebound to a different DB, so stale-arena bugs
// (relations, row buffers, dedup scratch leaking across requests) surface as
// tuple diffs.
func TestPooledExecDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	dbs := []*DB{randDB(r, 8, 3), randDB(r, 12, 3), randDB(r, 5, 3)}
	st := AcquireState(dbs[0])
	for i := 0; i < 1000; i++ {
		db := dbs[r.Intn(len(dbs))]
		p := randProgram(r, 3)

		fresh := NewExec(db)
		want, wantErr := fresh.Run(p)

		if r.Intn(4) == 0 {
			st.Release()
			st = AcquireState(db)
		} else if st.lastDB != db {
			st.Release()
			st = AcquireState(db)
		}
		got, gotErr := st.Exec().Run(p)

		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("case %d: fresh err %v, pooled err %v", i, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		wt, gt := canonTuples(want.Tuples()), canonTuples(got.Tuples())
		if fmt.Sprint(wt) != fmt.Sprint(gt) {
			t.Fatalf("case %d: pooled answer diverged\nprogram:\n%s\nfresh:  %v\npooled: %v", i, p, wt, gt)
		}
	}
	st.Release()
}

// recursiveProgram is a small but representative serving plan: a typed edge
// union, a constrained fixpoint (the shape MergeBatch emits after the
// end-split: closure + semijoin filter) and a compose.
func recursiveProgram() *ra.Program {
	edges := ra.UnionAll{Kids: []ra.Plan{ra.Base{Rel: "R0"}, ra.Base{Rel: "R1"}}}
	return &ra.Program{
		Stmts: []ra.Stmt{
			{Name: "s0", Plan: edges},
			{Name: "s1", Plan: ra.Fix{Seed: ra.Temp{Name: "s0"}, Start: ra.RootSeed{}}},
			{Name: "s2", Plan: ra.Semijoin{L: ra.Temp{Name: "s1"}, R: ra.Base{Rel: "R2"}}},
			{Name: "s3", Plan: ra.Compose{L: ra.Temp{Name: "s2"}, R: ra.Base{Rel: "R1"}}},
		},
		Result: "s3",
	}
}

// TestWarmExecAllocs is the steady-state allocation guard from the serving
// SLO: a warm pooled serial execution of a recursive program performs at
// most 2 allocations per run (ISSUE 7 acceptance criterion).
func TestWarmExecAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; alloc bounds need a normal build")
	}
	r := rand.New(rand.NewSource(11))
	db := randDB(r, 200, 3)
	p := recursiveProgram()

	st := AcquireState(db)
	if _, err := st.Exec().Run(p); err != nil {
		t.Fatal(err)
	}
	st.Release()

	allocs := testing.AllocsPerRun(50, func() {
		s := AcquireState(db)
		if _, err := s.Exec().Run(p); err != nil {
			t.Fatal(err)
		}
		s.Release()
	})
	if allocs > 2 {
		t.Fatalf("warm pooled serial run allocates %.1f times per request, want <= 2", allocs)
	}
}

// TestWarmExecAllocsParallel bounds the warm parallel path: morsel
// parallelism inherently allocates (goroutines, channels, per-worker
// buffers), so the bound is loose — it guards against the per-request cost
// regressing to the old build-everything-from-scratch behavior.
func TestWarmExecAllocsParallel(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; alloc bounds need a normal build")
	}
	r := rand.New(rand.NewSource(11))
	db := randDB(r, 200, 3)
	p := recursiveProgram()

	st := AcquireState(db)
	if _, err := st.Exec().Run(p); err != nil {
		t.Fatal(err)
	}
	st.Release()

	allocs := testing.AllocsPerRun(20, func() {
		s := AcquireState(db)
		ex := s.Exec()
		ex.Parallelism = 4
		if _, err := ex.Run(p); err != nil {
			t.Fatal(err)
		}
		s.Release()
	})
	if allocs > 500 {
		t.Fatalf("warm pooled parallel run allocates %.0f times per request, want <= 500", allocs)
	}
}
