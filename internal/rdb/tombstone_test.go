package rdb

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRelationDeleteCompact exercises the tombstone write path against a map
// model: random interleaved adds, deletes and value updates, then Compact,
// must leave exactly the model's live tuples with intact lookups.
func TestRelationDeleteCompact(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := NewRelation("R_x")
		model := map[[2]int]string{}
		for i := 0; i < 400; i++ {
			switch rng.Intn(5) {
			case 0, 1, 2: // add
				f, tt := rng.Intn(20), rng.Intn(60)
				v := fmt.Sprintf("v%d", rng.Intn(8))
				if r.Add(f, tt, v) {
					model[[2]int{f, tt}] = v
				}
			case 3: // delete
				f, tt := rng.Intn(20), rng.Intn(60)
				_, live := model[[2]int{f, tt}]
				if got := r.Delete(f, tt); got != live {
					t.Fatalf("seed %d op %d: Delete(%d,%d)=%v, model says %v", seed, i, f, tt, got, live)
				}
				delete(model, [2]int{f, tt})
			case 4: // value update
				f, tt := rng.Intn(20), rng.Intn(60)
				_, live := model[[2]int{f, tt}]
				v := fmt.Sprintf("u%d", i)
				if got := r.UpdateValue(f, tt, v); got != live {
					t.Fatalf("seed %d op %d: UpdateValue(%d,%d)=%v, model says %v", seed, i, f, tt, got, live)
				}
				if live {
					model[[2]int{f, tt}] = v
				}
			}
			if r.Len() != len(model) {
				t.Fatalf("seed %d op %d: Len=%d, model=%d", seed, i, r.Len(), len(model))
			}
		}
		r.Compact()
		if r.Tombstones() != 0 {
			t.Fatalf("seed %d: %d tombstones after Compact", seed, r.Tombstones())
		}
		if r.Len() != len(model) {
			t.Fatalf("seed %d: Len=%d after Compact, model=%d", seed, r.Len(), len(model))
		}
		for _, tp := range r.Tuples() {
			v, ok := model[[2]int{tp.F, tp.T}]
			if !ok || v != tp.V {
				t.Fatalf("seed %d: tuple %+v not in model (want %q)", seed, tp, v)
			}
		}
		// Indexes rebuilt after Compact must resolve live rows only.
		for k := range model {
			found := false
			for _, tup := range r.ChildrenOf(k[0]) {
				if tup.T == k[1] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("seed %d: ChildrenOf(%d) misses T=%d", seed, k[0], k[1])
			}
		}
	}
}

// TestChildrenOfSkipsTombstones: ChildrenOf must hide deleted rows before
// Compact runs (the store reads subtrees through it mid-transaction).
func TestChildrenOfSkipsTombstones(t *testing.T) {
	r := NewRelation("R_x")
	r.Add(1, 10, "a")
	r.Add(1, 11, "b")
	r.Add(1, 12, "c")
	if !r.Delete(1, 11) {
		t.Fatal("Delete(1,11) = false")
	}
	kids := r.ChildrenOf(1)
	if len(kids) != 2 || kids[0].T != 10 || kids[1].T != 12 {
		t.Fatalf("ChildrenOf(1) = %+v", kids)
	}
	if r.Has(1, 11) {
		t.Fatal("Has(1,11) after delete")
	}
	// Re-adding the same pair must succeed (tombstone slot reuse).
	if !r.Add(1, 11, "b2") {
		t.Fatal("re-Add(1,11) = false")
	}
	if got := len(r.ChildrenOf(1)); got != 3 {
		t.Fatalf("ChildrenOf(1) after re-add: %d", got)
	}
}

// TestPairSetRemove drives the open-addressing set's tombstone machinery:
// removals, sentinel-key handling, slot reuse and growth with tombstones
// present.
func TestPairSetRemove(t *testing.T) {
	var s pairSet
	rng := rand.New(rand.NewSource(5))
	model := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(700))
		if k == 699 {
			k = pairEmpty // exercise the sentinel side-flag
		}
		if rng.Intn(3) == 0 {
			want := model[k]
			if got := s.remove(k); got != want {
				t.Fatalf("op %d: remove(%#x)=%v, want %v", i, k, got, want)
			}
			delete(model, k)
		} else {
			want := !model[k]
			if got := s.insert(k); got != want {
				t.Fatalf("op %d: insert(%#x)=%v, want %v", i, k, got, want)
			}
			model[k] = true
		}
		if k != pairEmpty && s.has(k) != model[k] {
			t.Fatalf("op %d: has(%#x)=%v, want %v", i, k, s.has(k), model[k])
		}
	}
	realKeys := 0
	for k := range model {
		if !s.has(k) {
			t.Fatalf("final: has(%#x)=false", k)
		}
		if k != pairEmpty && k != pairDeleted {
			realKeys++
		}
	}
	if s.used != realKeys {
		t.Fatalf("used=%d, model=%d", s.used, realKeys)
	}
}

// TestCloneCarriesTombstones: a clone taken mid-delete must keep tombstone
// state, and compacting the clone must not disturb the original.
func TestCloneCarriesTombstones(t *testing.T) {
	r := NewRelation("R_x")
	for i := 0; i < 10; i++ {
		r.Add(1, i+10, fmt.Sprintf("v%d", i))
	}
	r.Delete(1, 13)
	c := r.Clone()
	if c.Len() != 9 || c.Tombstones() != 1 {
		t.Fatalf("clone: Len=%d Tombstones=%d", c.Len(), c.Tombstones())
	}
	c.Compact()
	if c.Len() != 9 || c.Tombstones() != 0 {
		t.Fatalf("clone after Compact: Len=%d Tombstones=%d", c.Len(), c.Tombstones())
	}
	if r.Tombstones() != 1 || r.Len() != 9 {
		t.Fatalf("original disturbed: Len=%d Tombstones=%d", r.Len(), r.Tombstones())
	}
	if c.Has(1, 13) || r.Has(1, 13) {
		t.Fatal("deleted pair still present")
	}
}
