package rdb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Save writes the database in a line-oriented text format, so a document
// shredded once can be reused across tool invocations:
//
//	R <relation> <F> <T> <quoted V>
//	N <id> <quoted label> <quoted V>       (node catalog entry)
//	O <id> <begin> <end> <level>           (document-order interval, v2)
//	D <fingerprint>                        (shredding DTD fingerprint, v2)
//
// Relations and tuples are written in deterministic order, so Save∘Load is
// the identity on the text form. The O/D records are format version 2: a
// pre-interval (v1) image loads with no encoding, and boot-time owners (e.g.
// store.Open) call RebuildIntervals to give old snapshots the fast path.
func (db *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var names []string
	for name := range db.Rels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rel := db.Rels[name]
		tuples := append([]Tuple(nil), rel.Tuples()...)
		sort.Slice(tuples, func(i, j int) bool {
			if tuples[i].F != tuples[j].F {
				return tuples[i].F < tuples[j].F
			}
			return tuples[i].T < tuples[j].T
		})
		for _, t := range tuples {
			if _, err := fmt.Fprintf(bw, "R %s %d %d %s\n", name, t.F, t.T, strconv.Quote(t.V)); err != nil {
				return err
			}
		}
		// Empty relations still need declaring so Load restores them.
		if len(tuples) == 0 {
			if _, err := fmt.Fprintf(bw, "E %s\n", name); err != nil {
				return err
			}
		}
	}
	var ids []int
	for id := range db.Vals {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if _, err := fmt.Fprintf(bw, "N %d %d %s %s\n",
			id, db.ParentOf[id], strconv.Quote(db.Labels[id]), strconv.Quote(db.Vals[id])); err != nil {
			return err
		}
	}
	if st := db.ivs.Load(); st != nil {
		ivIDs := make([]int, 0, len(st.iv))
		for id := range st.iv {
			ivIDs = append(ivIDs, id)
		}
		sort.Ints(ivIDs)
		for _, id := range ivIDs {
			n := st.iv[id]
			if _, err := fmt.Fprintf(bw, "O %d %d %d %d\n", id, n.Begin, n.End, n.Level); err != nil {
				return err
			}
		}
	}
	if db.DTDFP != "" {
		if _, err := fmt.Fprintf(bw, "D %s\n", db.DTDFP); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a database written by Save. Blank lines and lines starting
// with '#' are skipped, so callers (e.g. the document store's snapshots)
// may prefix the Save body with their own commented header.
func Load(r io.Reader) (*DB, error) {
	db := NewDB()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	var iv map[int]NodeInterval
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		kind, rest, _ := strings.Cut(line, " ")
		switch kind {
		case "R":
			name, rest2, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("rdb: line %d: malformed tuple", lineNo)
			}
			fs, rest3, ok := strings.Cut(rest2, " ")
			if !ok {
				return nil, fmt.Errorf("rdb: line %d: malformed tuple", lineNo)
			}
			ts, vq, ok := strings.Cut(rest3, " ")
			if !ok {
				return nil, fmt.Errorf("rdb: line %d: malformed tuple", lineNo)
			}
			f, err := strconv.Atoi(fs)
			if err != nil {
				return nil, fmt.Errorf("rdb: line %d: %v", lineNo, err)
			}
			t, err := strconv.Atoi(ts)
			if err != nil {
				return nil, fmt.Errorf("rdb: line %d: %v", lineNo, err)
			}
			v, err := strconv.Unquote(vq)
			if err != nil {
				return nil, fmt.Errorf("rdb: line %d: bad value %q: %v", lineNo, vq, err)
			}
			db.Rel(name).Add(f, t, v)
		case "E":
			db.Rel(strings.TrimSpace(rest))
		case "N":
			parts := splitN(rest, 3)
			if parts == nil {
				return nil, fmt.Errorf("rdb: line %d: malformed node entry", lineNo)
			}
			id, err := strconv.Atoi(parts[0])
			if err != nil {
				return nil, fmt.Errorf("rdb: line %d: %v", lineNo, err)
			}
			parent, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("rdb: line %d: %v", lineNo, err)
			}
			labelQ, valQ, ok := strings.Cut(parts[2], " ")
			if !ok {
				return nil, fmt.Errorf("rdb: line %d: malformed node entry", lineNo)
			}
			label, err := strconv.Unquote(labelQ)
			if err != nil {
				return nil, fmt.Errorf("rdb: line %d: %v", lineNo, err)
			}
			val, err := strconv.Unquote(valQ)
			if err != nil {
				return nil, fmt.Errorf("rdb: line %d: %v", lineNo, err)
			}
			db.Vals[id] = val
			db.Labels[id] = label
			db.ParentOf[id] = parent
		case "O":
			parts := strings.Fields(rest)
			if len(parts) != 4 {
				return nil, fmt.Errorf("rdb: line %d: malformed interval entry", lineNo)
			}
			id, err := strconv.Atoi(parts[0])
			if err != nil {
				return nil, fmt.Errorf("rdb: line %d: %v", lineNo, err)
			}
			begin, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("rdb: line %d: %v", lineNo, err)
			}
			end, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("rdb: line %d: %v", lineNo, err)
			}
			level, err := strconv.ParseInt(parts[3], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("rdb: line %d: %v", lineNo, err)
			}
			if end < begin {
				return nil, fmt.Errorf("rdb: line %d: inverted interval [%d, %d)", lineNo, begin, end)
			}
			if iv == nil {
				iv = map[int]NodeInterval{}
			}
			iv[id] = NodeInterval{Begin: begin, End: end, Level: int32(level)}
		case "D":
			db.DTDFP = strings.TrimSpace(rest)
		default:
			return nil, fmt.Errorf("rdb: line %d: unknown record kind %q", lineNo, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if iv != nil {
		db.AdoptIntervals(iv)
	}
	return db, nil
}

// splitN cuts the string into n fields, the last one keeping the remainder.
func splitN(s string, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n-1; i++ {
		head, rest, ok := strings.Cut(s, " ")
		if !ok {
			return nil
		}
		out = append(out, head)
		s = rest
	}
	return append(out, s)
}
