package rdb

import (
	"testing"

	"xpath2sql/internal/ra"
)

// TestFixTrackPaths verifies the §5.2 P attribute: each closure tuple
// carries one witnessing path.
func TestFixTrackPaths(t *testing.T) {
	db := chainDB(5) // 1→2→3→4→5
	rel, _ := run(t, db, prog(ra.Fix{Seed: ra.Base{Rel: "E"}, TrackPaths: true}))
	if got := rel.PathOf(1, 4); len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("path 1→4 = %v", got)
	}
	if got := rel.PathOf(1, 2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("path 1→2 = %v", got)
	}
	// Paths must be recorded for every tuple.
	for _, tp := range rel.Tuples() {
		p := rel.PathOf(tp.F, tp.T)
		if len(p) == 0 {
			t.Fatalf("missing path for %+v", tp)
		}
		if p[len(p)-1] != tp.T {
			t.Fatalf("path %v does not end at %d", p, tp.T)
		}
		// The path is a valid edge walk from F.
		prev := tp.F
		for _, n := range p {
			if !db.Rel("E").Has(prev, n) {
				t.Fatalf("path %v uses a non-edge %d→%d", p, prev, n)
			}
			prev = n
		}
	}
}

func TestFixTrackPathsForward(t *testing.T) {
	db := chainDB(5)
	db.Insert("S", 0, 1, "") // start set = {1}
	rel, _ := run(t, db, prog(ra.Fix{Seed: ra.Base{Rel: "E"}, Start: ra.Base{Rel: "S"}, TrackPaths: true}))
	if got := rel.PathOf(1, 5); len(got) != 4 {
		t.Fatalf("path 1→5 = %v", got)
	}
}

func TestFixTrackPathsBackward(t *testing.T) {
	db := chainDB(5)
	db.Insert("S", 5, 9, "") // end set (F values) = {5}
	rel, _ := run(t, db, prog(ra.Fix{Seed: ra.Base{Rel: "E"}, End: ra.Base{Rel: "S"}, TrackPaths: true}))
	if got := rel.PathOf(2, 5); len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("path 2→5 = %v", got)
	}
}

func TestDBLabelsAndParents(t *testing.T) {
	db := NewDB()
	db.InsertLabeled("R_a", "a", 0, 1, "")
	db.InsertLabeled("R_b", "b", 1, 2, "x")
	if db.Labels[2] != "b" || db.Labels[1] != "a" {
		t.Fatalf("labels = %v", db.Labels)
	}
	if db.ParentOf[2] != 1 || db.ParentOf[1] != 0 {
		t.Fatalf("parents = %v", db.ParentOf)
	}
}
