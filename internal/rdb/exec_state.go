package rdb

import (
	"sync"

	"xpath2sql/internal/obs"
)

// ExecState is a pooled per-request execution context: an Exec plus the
// arena of scratch structures it allocates while evaluating a program —
// temporary relations (with their pair sets, row arrays and index
// backings), fixpoint delta buffers and dedup scratch. States are acquired
// per request and released when the answer has been extracted; a released
// state keeps every capacity its request grew, so a warm steady-state
// request allocates (almost) nothing.
//
// The contract is strictly request-scoped: every *Relation an arena-backed
// Exec returns is recycled by Release, so callers must copy out whatever
// they keep (IDs, tuples, stats) before releasing. One state serves one
// goroutine at a time; the package-level pool makes acquisition safe from
// any number of concurrent requests.
type ExecState struct {
	exec    Exec
	free    []*Relation // reset pooled temporaries ready for reuse
	owned   []*Relation // temporaries handed out since the last Release
	rowBufs [][]row     // pooled fixpoint delta buffers
	seen    map[int32]struct{}
	lastDB  *DB
}

var statePool = sync.Pool{New: func() any { return new(ExecState) }}

// AcquireState returns a pooled execution state bound to db, with lazy
// evaluation, single-threaded operators and no limits — the same defaults
// as NewExec. A state last used against a different DB drops its cached
// relations (they reference the old interner) but is otherwise reused.
func AcquireState(db *DB) *ExecState {
	s := statePool.Get().(*ExecState)
	if s.lastDB != db {
		s.free = s.free[:0]
		s.exec.ident = nil
		s.lastDB = db
	}
	e := &s.exec
	e.DB = db
	e.Lazy = true
	e.Parallelism = 1
	e.Limits = obs.Limits{}
	e.Stats = Stats{}
	e.IntervalMode = IntervalAuto
	e.arena = s
	return s
}

// Exec returns the state's executor. Callers may set Parallelism and
// Limits before running; the next AcquireState resets both.
func (s *ExecState) Exec() *Exec { return &s.exec }

// Release resets every arena structure the request used and returns the
// state to the pool. All relations the executor returned become invalid.
func (s *ExecState) Release() {
	for _, r := range s.owned {
		r.reset()
		s.free = append(s.free, r)
	}
	s.owned = s.owned[:0]
	e := &s.exec
	if e.env != nil {
		clear(e.env)
		clear(e.running)
	}
	e.prog = nil
	e.ctx = nil
	e.trace = nil
	statePool.Put(s)
}

// alloc hands out a pooled temporary relation bound to the current DB's
// interner.
func (s *ExecState) alloc(name string) *Relation {
	var r *Relation
	if n := len(s.free); n > 0 {
		r = s.free[n-1]
		s.free = s.free[:n-1]
		r.Name = name
		r.syms = s.exec.DB.Syms
	} else {
		r = newRelation(name, s.exec.DB.Syms)
		r.pooled = true
	}
	s.owned = append(s.owned, r)
	return r
}

// getRowBuf returns a pooled row buffer (nil without an arena; append grows
// it either way).
func (e *Exec) getRowBuf() []row {
	if e.arena != nil {
		if n := len(e.arena.rowBufs); n > 0 {
			b := e.arena.rowBufs[n-1]
			e.arena.rowBufs = e.arena.rowBufs[:n-1]
			return b[:0]
		}
	}
	return nil
}

// putRowBuf returns a buffer taken with getRowBuf to the arena.
func (e *Exec) putRowBuf(b []row) {
	if e.arena != nil && b != nil {
		e.arena.rowBufs = append(e.arena.rowBufs, b)
	}
}

// idScratch returns an empty int32 set for a single tight dedup loop. The
// arena keeps one; callers must not hold it across a nested eval.
func (e *Exec) idScratch(hint int) map[int32]struct{} {
	if e.arena != nil {
		if e.arena.seen == nil {
			e.arena.seen = make(map[int32]struct{}, hint)
		} else {
			clear(e.arena.seen)
		}
		return e.arena.seen
	}
	return make(map[int32]struct{}, hint)
}
