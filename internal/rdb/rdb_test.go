package rdb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xpath2sql/internal/ra"
)

// chainDB builds a database with one relation "E" forming a path graph
// 1→2→…→n plus the provided extra edges.
func chainDB(n int, extra ...[2]int) *DB {
	db := NewDB()
	for i := 1; i < n; i++ {
		db.Insert("E", i, i+1, "")
	}
	for _, e := range extra {
		db.Insert("E", e[0], e[1], "")
	}
	for i := 1; i <= n; i++ {
		if _, ok := db.Vals[i]; !ok {
			db.Vals[i] = ""
		}
	}
	return db
}

func run(t *testing.T, db *DB, prog *ra.Program) (*Relation, *Exec) {
	t.Helper()
	ex := NewExec(db)
	rel, err := ex.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	return rel, ex
}

func prog(p ra.Plan) *ra.Program {
	return &ra.Program{Stmts: []ra.Stmt{{Name: "result", Plan: p}}, Result: "result"}
}

func TestRelationDedup(t *testing.T) {
	r := NewRelation("r")
	if !r.Add(1, 2, "x") {
		t.Fatal("first Add returned false")
	}
	if r.Add(1, 2, "y") {
		t.Fatal("duplicate (F,T) accepted")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	if !r.Has(1, 2) || r.Has(2, 1) {
		t.Fatalf("Has wrong")
	}
}

func TestRelationIndexes(t *testing.T) {
	r := NewRelation("r")
	r.Add(1, 2, "")
	r.Add(1, 3, "")
	r.Add(2, 3, "")
	if got := len(r.ByF(1)); got != 2 {
		t.Fatalf("ByF(1) = %d", got)
	}
	if got := len(r.ByT(3)); got != 2 {
		t.Fatalf("ByT(3) = %d", got)
	}
	// Index invalidation on Add.
	r.Add(1, 4, "")
	if got := len(r.ByF(1)); got != 3 {
		t.Fatalf("ByF(1) after Add = %d", got)
	}
	ids := r.TIDs()
	if len(ids) != 3 || ids[0] != 2 || ids[2] != 4 {
		t.Fatalf("TIDs = %v", ids)
	}
}

func TestCompose(t *testing.T) {
	db := NewDB()
	db.Insert("A", 0, 1, "")
	db.Insert("B", 1, 2, "x")
	db.Insert("B", 1, 3, "y")
	db.Insert("B", 9, 4, "z")
	rel, _ := run(t, db, prog(ra.Compose{L: ra.Base{Rel: "A"}, R: ra.Base{Rel: "B"}}))
	if rel.Len() != 2 {
		t.Fatalf("compose len = %d", rel.Len())
	}
	if !rel.Has(0, 2) || !rel.Has(0, 3) {
		t.Fatalf("compose tuples wrong: %v", rel.Tuples())
	}
	// V comes from the right side.
	for _, tp := range rel.Tuples() {
		if tp.T == 2 && tp.V != "x" {
			t.Fatalf("V not propagated: %+v", tp)
		}
	}
}

func TestUnionDiffSemiAnti(t *testing.T) {
	db := NewDB()
	db.Insert("A", 1, 2, "")
	db.Insert("A", 1, 3, "")
	db.Insert("B", 1, 3, "")
	db.Insert("B", 1, 4, "")
	db.Insert("W", 3, 9, "")

	rel, _ := run(t, db, prog(ra.UnionAll{Kids: []ra.Plan{ra.Base{Rel: "A"}, ra.Base{Rel: "B"}}}))
	if rel.Len() != 3 {
		t.Fatalf("union len = %d", rel.Len())
	}
	rel, _ = run(t, db, prog(ra.Diff{L: ra.Base{Rel: "A"}, R: ra.Base{Rel: "B"}}))
	if rel.Len() != 1 || !rel.Has(1, 2) {
		t.Fatalf("diff = %v", rel.Tuples())
	}
	// Semijoin: A tuples whose T has a W edge (T=3 only).
	rel, _ = run(t, db, prog(ra.Semijoin{L: ra.Base{Rel: "A"}, R: ra.Base{Rel: "W"}}))
	if rel.Len() != 1 || !rel.Has(1, 3) {
		t.Fatalf("semijoin = %v", rel.Tuples())
	}
	rel, _ = run(t, db, prog(ra.Antijoin{L: ra.Base{Rel: "A"}, R: ra.Base{Rel: "W"}}))
	if rel.Len() != 1 || !rel.Has(1, 2) {
		t.Fatalf("antijoin = %v", rel.Tuples())
	}
}

func TestSelects(t *testing.T) {
	db := NewDB()
	db.Insert("A", 0, 1, "x")
	db.Insert("A", 1, 2, "y")
	rel, _ := run(t, db, prog(ra.SelectVal{Child: ra.Base{Rel: "A"}, Val: "y"}))
	if rel.Len() != 1 || !rel.Has(1, 2) {
		t.Fatalf("selectval = %v", rel.Tuples())
	}
	rel, _ = run(t, db, prog(ra.SelectRoot{Child: ra.Base{Rel: "A"}}))
	if rel.Len() != 1 || !rel.Has(0, 1) {
		t.Fatalf("selectroot = %v", rel.Tuples())
	}
}

func TestIdentAndIdentOf(t *testing.T) {
	db := NewDB()
	db.Insert("A", 0, 1, "x")
	db.Insert("A", 1, 2, "y")
	// R_id covers every stored node plus the virtual root (0,0).
	rel, _ := run(t, db, prog(ra.Ident{}))
	if rel.Len() != 3 || !rel.Has(0, 0) || !rel.Has(1, 1) || !rel.Has(2, 2) {
		t.Fatalf("ident = %v", rel.Tuples())
	}
	rel, _ = run(t, db, prog(ra.IdentOf{Child: ra.Base{Rel: "A"}}))
	if rel.Len() != 2 || !rel.Has(1, 1) || !rel.Has(2, 2) {
		t.Fatalf("identof T = %v", rel.Tuples())
	}
	rel, _ = run(t, db, prog(ra.IdentOf{Child: ra.Base{Rel: "A"}, OnF: true}))
	if rel.Len() != 2 || !rel.Has(0, 0) || !rel.Has(1, 1) {
		t.Fatalf("identof F = %v", rel.Tuples())
	}
}

// closureRef computes the transitive closure by Floyd–Warshall as a
// reference for Φ(R).
func closureRef(edges []Tuple, n int) map[[2]int]bool {
	reach := map[[2]int]bool{}
	for _, e := range edges {
		reach[[2]int{e.F, e.T}] = true
	}
	for k := 0; k <= n; k++ {
		for i := 0; i <= n; i++ {
			if !reach[[2]int{i, k}] {
				continue
			}
			for j := 0; j <= n; j++ {
				if reach[[2]int{k, j}] {
					reach[[2]int{i, j}] = true
				}
			}
		}
	}
	return reach
}

func TestFixEqualsClosure(t *testing.T) {
	db := chainDB(5, [2]int{5, 2}, [2]int{3, 3})
	rel, ex := run(t, db, prog(ra.Fix{Seed: ra.Base{Rel: "E"}}))
	want := closureRef(db.Rel("E").Tuples(), 6)
	if rel.Len() != len(want) {
		t.Fatalf("closure len = %d, want %d", rel.Len(), len(want))
	}
	for k := range want {
		if !rel.Has(k[0], k[1]) {
			t.Errorf("missing pair %v", k)
		}
	}
	if ex.Stats.LFPs != 1 {
		t.Errorf("LFPs = %d", ex.Stats.LFPs)
	}
	if ex.Stats.LFPIters == 0 {
		t.Errorf("LFPIters = 0")
	}
}

// TestFixRandomGraphs: Φ(R) equals Floyd–Warshall closure on random graphs.
func TestFixRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		db := NewDB()
		var edges []Tuple
		for i := 0; i < n*2; i++ {
			f0, t0 := 1+r.Intn(n), 1+r.Intn(n)
			db.Insert("E", f0, t0, "")
			edges = append(edges, Tuple{F: f0, T: t0})
		}
		ex := NewExec(db)
		rel, err := ex.Run(prog(ra.Fix{Seed: ra.Base{Rel: "E"}}))
		if err != nil {
			return false
		}
		want := closureRef(db.Rel("E").Tuples(), n)
		if rel.Len() != len(want) {
			return false
		}
		for k := range want {
			if !rel.Has(k[0], k[1]) {
				return false
			}
		}
		_ = edges
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFixStartEndConstraints: constrained fixpoints agree with filtering the
// unconstrained closure.
func TestFixStartEndConstraints(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		db := NewDB()
		for i := 0; i < n*2; i++ {
			db.Insert("E", 1+r.Intn(n), 1+r.Intn(n), "")
		}
		// Constraint relation S: random tuples; start set is π_T(S), end
		// set π_F(S).
		for i := 0; i < 3; i++ {
			db.Insert("S", 1+r.Intn(n), 1+r.Intn(n), "")
		}
		full, err := NewExec(db).Run(prog(ra.Fix{Seed: ra.Base{Rel: "E"}}))
		if err != nil {
			return false
		}
		started, err := NewExec(db).Run(prog(ra.Fix{Seed: ra.Base{Rel: "E"}, Start: ra.Base{Rel: "S"}}))
		if err != nil {
			return false
		}
		ended, err := NewExec(db).Run(prog(ra.Fix{Seed: ra.Base{Rel: "E"}, End: ra.Base{Rel: "S"}}))
		if err != nil {
			return false
		}
		both, err := NewExec(db).Run(prog(ra.Fix{Seed: ra.Base{Rel: "E"}, Start: ra.Base{Rel: "S"}, End: ra.Base{Rel: "S"}}))
		if err != nil {
			return false
		}
		ts := db.Rel("S").TSet()
		fs := db.Rel("S").FSet()
		wantStart, wantEnd, wantBoth := 0, 0, 0
		for _, tp := range full.Tuples() {
			_, inS := ts[tp.F]
			_, inE := fs[tp.T]
			if inS {
				wantStart++
				if !started.Has(tp.F, tp.T) {
					return false
				}
			}
			if inE {
				wantEnd++
				if !ended.Has(tp.F, tp.T) {
					return false
				}
			}
			if inS && inE {
				wantBoth++
				if !both.Has(tp.F, tp.T) {
					return false
				}
			}
		}
		return started.Len() == wantStart && ended.Len() == wantEnd && both.Len() == wantBoth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRecUnionEdgeModeFig2(t *testing.T) {
	// The dept database of Table 1, relations Rd, Rc, Rs, Rp; the SQLGen-R
	// query of Fig 2 must produce exactly the tuples of Table 2.
	db := NewDB()
	// Node IDs: d1=1, c1=2, c2=3, c3=4, c4=5, c5=6, s1=7, s2=8, p1=9, p2=10.
	db.Insert("Rd", 0, 1, "")
	db.Insert("Rc", 1, 2, "")
	db.Insert("Rc", 2, 3, "")
	db.Insert("Rc", 3, 4, "")
	db.Insert("Rc", 9, 5, "")
	db.Insert("Rc", 8, 6, "")
	db.Insert("Rs", 2, 7, "")
	db.Insert("Rs", 2, 8, "")
	db.Insert("Rp", 3, 9, "")
	db.Insert("Rp", 5, 10, "")

	// Init (Fig 2 lines 3–4): Rc edges incoming from dept nodes — the edge
	// tuples themselves, expressed as ident_T(Rd) ⋈ Rc.
	rec := ra.RecUnion{
		Init: []ra.Tagged{{Tag: "c", Plan: ra.Compose{L: ra.IdentOf{Child: ra.Base{Rel: "Rd"}}, R: ra.Base{Rel: "Rc"}}}},
		Edges: []ra.RecEdge{
			{FromTag: "c", ToTag: "c", Rel: ra.Base{Rel: "Rc"}},
			{FromTag: "c", ToTag: "s", Rel: ra.Base{Rel: "Rs"}},
			{FromTag: "s", ToTag: "c", Rel: ra.Base{Rel: "Rc"}},
			{FromTag: "c", ToTag: "p", Rel: ra.Base{Rel: "Rp"}},
			{FromTag: "p", ToTag: "c", Rel: ra.Base{Rel: "Rc"}},
		},
	}
	rel, ex := run(t, db, prog(rec))
	// Table 2: (d1,c1) (c1,c2) (c1,s1) (c1,s2) (c2,c3) (c2,p1) (s2,c5)
	// (p1,c4) (c4,p2) — 9 tuples.
	want := [][2]int{{1, 2}, {2, 3}, {2, 7}, {2, 8}, {3, 4}, {3, 9}, {8, 6}, {9, 5}, {5, 10}}
	if rel.Len() != len(want) {
		t.Fatalf("recunion len = %d, want %d: %v", rel.Len(), len(want), rel.Tuples())
	}
	for _, w := range want {
		if !rel.Has(w[0], w[1]) {
			t.Errorf("missing %v", w)
		}
	}
	if ex.Stats.RecFixes != 1 {
		t.Errorf("RecFixes = %d", ex.Stats.RecFixes)
	}
	// Wait: the init tuple (d1,c1) joins edges in iteration 1, etc.; Table 2
	// shows 4 iterations after the init.
	if ex.Stats.LFPIters < 4 {
		t.Errorf("iterations = %d, want >= 4", ex.Stats.LFPIters)
	}

	// ResultTag 'p' selects the project rows: T values {p1, p2} = {9, 10}.
	rec.ResultTag = "p"
	rel, _ = run(t, db, prog(rec))
	ids := rel.TIDs()
	if len(ids) != 2 || ids[0] != 9 || ids[1] != 10 {
		t.Fatalf("Rid='p' T values = %v", ids)
	}
}

func TestRecUnionPairsMode(t *testing.T) {
	// Pair mode must compute (origin, descendant) pairs: seed (1,1) over a
	// chain 1→2→3 with tags per type alternating.
	db := NewDB()
	db.Insert("A", 0, 1, "")
	db.Insert("B", 1, 2, "")
	db.Insert("A2", 2, 3, "")
	seed := NewRelation("")
	_ = seed
	rec := ra.RecUnion{
		Init: []ra.Tagged{{Tag: "a", Plan: ra.IdentOf{Child: ra.Base{Rel: "A"}}}},
		Edges: []ra.RecEdge{
			{FromTag: "a", ToTag: "b", Rel: ra.Base{Rel: "B"}},
			{FromTag: "b", ToTag: "a", Rel: ra.Base{Rel: "A2"}},
		},
		Pairs: true,
	}
	rel, _ := run(t, db, prog(rec))
	// Pairs: (1,1) ident, (1,2), (1,3).
	if rel.Len() != 3 || !rel.Has(1, 1) || !rel.Has(1, 2) || !rel.Has(1, 3) {
		t.Fatalf("pairs = %v", rel.Tuples())
	}
}

func TestRootSeedAndTypeFilter(t *testing.T) {
	db := NewDB()
	db.Insert("A", 0, 1, "")
	db.Insert("B", 1, 2, "")
	rel, _ := run(t, db, prog(ra.RootSeed{}))
	if rel.Len() != 1 || !rel.Has(0, 0) {
		t.Fatalf("rootseed = %v", rel.Tuples())
	}
	all := ra.UnionAll{Kids: []ra.Plan{ra.Base{Rel: "A"}, ra.Base{Rel: "B"}}}
	rel, _ = run(t, db, prog(ra.TypeFilter{Child: all, Rel: "B"}))
	if rel.Len() != 1 || !rel.Has(1, 2) {
		t.Fatalf("typefilter = %v", rel.Tuples())
	}
}

func TestLazyEvaluationSkipsUnused(t *testing.T) {
	db := NewDB()
	db.Insert("A", 0, 1, "")
	p := &ra.Program{
		Stmts: []ra.Stmt{
			{Name: "unused", Plan: ra.Fix{Seed: ra.Base{Rel: "A"}}},
			{Name: "result", Plan: ra.Base{Rel: "A"}},
		},
		Result: "result",
	}
	ex := NewExec(db)
	if _, err := ex.Run(p); err != nil {
		t.Fatal(err)
	}
	if ex.Stats.StmtsRun != 1 {
		t.Fatalf("lazy run evaluated %d statements, want 1", ex.Stats.StmtsRun)
	}
	if ex.Stats.LFPs != 0 {
		t.Fatalf("lazy run evaluated the unused fixpoint")
	}
	// Eager mode runs everything.
	ex2 := NewExec(db)
	ex2.Lazy = false
	if _, err := ex2.Run(p); err != nil {
		t.Fatal(err)
	}
	if ex2.Stats.StmtsRun != 2 || ex2.Stats.LFPs != 1 {
		t.Fatalf("eager run: stmts=%d lfps=%d", ex2.Stats.StmtsRun, ex2.Stats.LFPs)
	}
}

func TestExecErrors(t *testing.T) {
	db := NewDB()
	ex := NewExec(db)
	if _, err := ex.Run(&ra.Program{Result: "nope"}); err == nil {
		t.Fatalf("unknown statement accepted")
	}
	cyc := &ra.Program{
		Stmts:  []ra.Stmt{{Name: "a", Plan: ra.Temp{Name: "a"}}},
		Result: "a",
	}
	if _, err := NewExec(db).Run(cyc); err == nil {
		t.Fatalf("cyclic reference accepted")
	}
}

func TestTempMemoization(t *testing.T) {
	db := chainDB(4)
	p := &ra.Program{
		Stmts: []ra.Stmt{
			{Name: "tc", Plan: ra.Fix{Seed: ra.Base{Rel: "E"}}},
			{Name: "result", Plan: ra.UnionAll{Kids: []ra.Plan{ra.Temp{Name: "tc"}, ra.Temp{Name: "tc"}}}},
		},
		Result: "result",
	}
	ex := NewExec(db)
	if _, err := ex.Run(p); err != nil {
		t.Fatal(err)
	}
	if ex.Stats.LFPs != 1 {
		t.Fatalf("temp evaluated twice: LFPs = %d", ex.Stats.LFPs)
	}
}
