package rdb

import (
	"testing"

	"xpath2sql/internal/ra"
)

// diamond builds a program with a diamond dependency: two independent
// branches joined at the top.
func diamondProgram() *ra.Program {
	return &ra.Program{
		Stmts: []ra.Stmt{
			{Name: "left", Plan: ra.Fix{Seed: ra.Base{Rel: "E"}}},
			{Name: "right", Plan: ra.Compose{L: ra.Base{Rel: "E"}, R: ra.Base{Rel: "E"}}},
			{Name: "unused", Plan: ra.Fix{Seed: ra.Base{Rel: "BIG"}}},
			{Name: "result", Plan: ra.UnionAll{Kids: []ra.Plan{
				ra.Temp{Name: "left"}, ra.Temp{Name: "right"},
			}}},
		},
		Result: "result",
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	db := chainDB(30, [2]int{30, 5}, [2]int{12, 3})
	for i := 1; i < 10; i++ {
		db.Insert("BIG", i, i+1, "")
	}
	p := diamondProgram()
	serialEx := NewExec(db)
	serial, err := serialEx.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		par, stats, err := RunParallel(db, p, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Len() != serial.Len() {
			t.Fatalf("workers=%d: %d tuples vs %d", workers, par.Len(), serial.Len())
		}
		for _, tp := range serial.Tuples() {
			if !par.Has(tp.F, tp.T) {
				t.Fatalf("workers=%d: missing %+v", workers, tp)
			}
		}
		// The unused statement must not run (reachability pruning).
		if stats.StmtsRun != 3 {
			t.Fatalf("workers=%d: ran %d statements, want 3", workers, stats.StmtsRun)
		}
	}
}

func TestRunParallelErrors(t *testing.T) {
	db := chainDB(3)
	bad := &ra.Program{
		Stmts:  []ra.Stmt{{Name: "result", Plan: ra.Temp{Name: "ghost"}}},
		Result: "result",
	}
	if _, _, err := RunParallel(db, bad, 4); err == nil {
		t.Fatal("unknown dependency accepted")
	}
	cyc := &ra.Program{
		Stmts: []ra.Stmt{
			{Name: "a", Plan: ra.Temp{Name: "b"}},
			{Name: "b", Plan: ra.Temp{Name: "a"}},
			{Name: "result", Plan: ra.Temp{Name: "a"}},
		},
		Result: "result",
	}
	if _, _, err := RunParallel(db, cyc, 4); err == nil {
		t.Fatal("cycle accepted")
	}
	noResult := &ra.Program{Result: "nope"}
	if _, _, err := RunParallel(db, noResult, 4); err == nil {
		t.Fatal("missing result accepted")
	}
	dup := &ra.Program{
		Stmts: []ra.Stmt{
			{Name: "x", Plan: ra.Base{Rel: "E"}},
			{Name: "x", Plan: ra.Base{Rel: "E"}},
		},
		Result: "x",
	}
	if _, _, err := RunParallel(db, dup, 4); err == nil {
		t.Fatal("duplicate statement accepted")
	}
}

// TestRunParallelManyStatements stresses scheduling with a wide fan-in.
func TestRunParallelManyStatements(t *testing.T) {
	db := chainDB(20)
	var stmts []ra.Stmt
	var kids []ra.Plan
	for i := 0; i < 40; i++ {
		name := "s" + string(rune('A'+i%26)) + string(rune('0'+i/26))
		stmts = append(stmts, ra.Stmt{Name: name, Plan: ra.Compose{L: ra.Base{Rel: "E"}, R: ra.Base{Rel: "E"}}})
		kids = append(kids, ra.Temp{Name: name})
	}
	stmts = append(stmts, ra.Stmt{Name: "result", Plan: ra.UnionAll{Kids: kids}})
	p := &ra.Program{Stmts: stmts, Result: "result"}
	rel, stats, err := RunParallel(db, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() == 0 {
		t.Fatal("empty result")
	}
	if stats.StmtsRun != 41 {
		t.Fatalf("ran %d statements", stats.StmtsRun)
	}
}
