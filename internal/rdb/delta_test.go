package rdb

import (
	"errors"
	"fmt"
	"maps"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"xpath2sql/internal/ra"
)

// Differential tests for incremental view maintenance: a ViewState advanced
// by ApplyInsert/ApplyDelete/ApplyText across update sequences must hold
// exactly the answer a full re-execution computes on the updated database,
// and the published (added, removed) deltas must equal the answer set diffs.

// cowDB mirrors the store's copy-on-write transaction: cloned relations and
// catalogs over the SAME interner, so view symbol spaces stay compatible.
func cowDB(db *DB) *DB {
	nd := &DB{
		Rels:     make(map[string]*Relation, len(db.Rels)),
		Syms:     db.Syms,
		Vals:     maps.Clone(db.Vals),
		Labels:   maps.Clone(db.Labels),
		ParentOf: maps.Clone(db.ParentOf),
	}
	for name, r := range db.Rels {
		nd.Rels[name] = r.Clone()
	}
	nd.ShareIntervalsFrom(db)
	return nd
}

// fullAnswer is the oracle: translate-free full re-execution on the current
// database, extracting answer IDs the way the backend does.
func fullAnswer(t *testing.T, db *DB, p *ra.Program) []int {
	t.Helper()
	rel, err := NewExec(db).Run(p)
	if err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	ids := rel.TIDs()
	if len(ids) > 0 && ids[0] == 0 {
		ids = ids[1:]
	}
	return ids
}

func diffIDs(old, new []int) (added, removed []int) {
	inOld := make(map[int]bool, len(old))
	for _, id := range old {
		inOld[id] = true
	}
	inNew := make(map[int]bool, len(new))
	for _, id := range new {
		inNew[id] = true
	}
	for _, id := range new {
		if !inOld[id] {
			added = append(added, id)
		}
	}
	for _, id := range old {
		if !inNew[id] {
			removed = append(removed, id)
		}
	}
	sort.Ints(added)
	sort.Ints(removed)
	return added, removed
}

// randInsertablePlan generates plans inside the insert-maintainable fragment
// (no Antijoin/Diff/RecUnion, no tracked paths); Semijoin and SelectVal are
// in, so the generated views span the deletable/text-immune sub-fragments
// too.
func randInsertablePlan(r *rand.Rand, depth, nRels int, temps []string) ra.Plan {
	baseRel := func() string { return fmt.Sprintf("R%d", r.Intn(nRels)) }
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			if len(temps) > 0 {
				return ra.Temp{Name: temps[r.Intn(len(temps))]}
			}
			return ra.Base{Rel: baseRel()}
		case 1:
			return ra.RootSeed{}
		default:
			return ra.Base{Rel: baseRel()}
		}
	}
	child := func() ra.Plan { return randInsertablePlan(r, depth-1, nRels, temps) }
	switch r.Intn(10) {
	case 0:
		return ra.Compose{L: child(), R: child()}
	case 1:
		kids := []ra.Plan{child(), child()}
		if r.Intn(2) == 0 {
			kids = append(kids, child())
		}
		return ra.UnionAll{Kids: kids}
	case 2, 3:
		fx := ra.Fix{Seed: child()}
		if r.Intn(2) == 0 {
			fx.Start = child()
		}
		if r.Intn(2) == 0 {
			fx.End = child()
		}
		return fx
	case 4:
		return ra.SelectVal{Child: child(), Val: []string{"a", "b", "z"}[r.Intn(3)]}
	case 5:
		return ra.SelectRoot{Child: child()}
	case 6:
		return ra.Semijoin{L: child(), R: child()}
	case 7:
		return ra.TypeFilter{Child: child(), Rel: baseRel(), OnF: r.Intn(2) == 0}
	case 8:
		return ra.IdentOf{Child: child(), OnF: r.Intn(2) == 0}
	default:
		return ra.Ident{}
	}
}

func randInsertableProgram(r *rand.Rand, nRels int) *ra.Program {
	nStmts := 1 + r.Intn(4)
	var stmts []ra.Stmt
	var temps []string
	for i := 0; i < nStmts; i++ {
		name := fmt.Sprintf("s%d", i)
		stmts = append(stmts, ra.Stmt{Name: name, Plan: randInsertablePlan(r, 1+r.Intn(3), nRels, temps)})
		temps = append(temps, name)
	}
	return &ra.Program{Stmts: stmts, Result: temps[len(temps)-1]}
}

// applyOrRebuild advances vs by the maintenance matrix a caller (the ivm
// hub) uses, falling back to Rebuild exactly when the view or the update is
// outside the incremental fragment. It returns the published delta.
func applyOrRebuild(t *testing.T, vs *ViewState, apply func() ([]int, []int, error), newDB *DB) (added, removed []int) {
	t.Helper()
	a, rm, err := apply()
	if err != nil {
		if !errors.Is(err, ErrNonIncremental) {
			t.Fatalf("apply: %v", err)
		}
		a, rm, err = vs.Rebuild(newDB)
		if err != nil {
			t.Fatalf("rebuild: %v", err)
		}
	}
	return a, rm
}

// TestViewInsertDifferential: random insertable programs over random graph
// databases; random insert batches with fresh node IDs (the store's ID
// discipline) applied via ApplyInsert must track the full-execution answer
// and publish exact set-diff deltas.
func TestViewInsertDifferential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nRels := 1 + r.Intn(3)
		n := 3 + r.Intn(15)
		db := randDB(r, n, nRels)
		p := randInsertableProgram(r, nRels)

		vs, err := BuildViewState(db, p)
		if err != nil {
			t.Logf("build (seed=%d): %v", seed, err)
			return false
		}
		if !sameIDs(vs.AnswerIDs(), fullAnswer(t, db, p)) {
			t.Logf("initial answer differs (seed=%d)", seed)
			return false
		}

		nextID := n + 1
		vocab := []string{"", "a", "b", "c"}
		for step := 0; step < 4; step++ {
			prev := vs.AnswerIDs()
			db2 := cowDB(db)
			bd := BaseDelta{Rows: map[string][]DeltaEdge{}}
			batch := 1 + r.Intn(4)
			for i := 0; i < batch; i++ {
				// F is any existing node (or the virtual root, or an
				// earlier node of this batch); T is always fresh.
				f := r.Intn(nextID)
				id := nextID
				nextID++
				rel := fmt.Sprintf("R%d", r.Intn(nRels))
				v := vocab[r.Intn(len(vocab))]
				db2.Insert(rel, f, id, v)
				bd.Rows[rel] = append(bd.Rows[rel], DeltaEdge{F: f, T: id, V: v})
				bd.NewIDs = append(bd.NewIDs, id)
			}
			var added []int
			if vs.Insertable() {
				if added, err = vs.ApplyInsert(db2, bd); err != nil {
					t.Logf("ApplyInsert (seed=%d): %v", seed, err)
					return false
				}
			} else {
				if added, _, err = vs.Rebuild(db2); err != nil {
					t.Logf("Rebuild (seed=%d): %v", seed, err)
					return false
				}
			}
			db = db2
			want := fullAnswer(t, db, p)
			if !sameIDs(vs.AnswerIDs(), want) {
				t.Logf("answer differs after insert step %d (seed=%d)\nmaintained: %v\nfull:       %v",
					step, seed, vs.AnswerIDs(), want)
				return false
			}
			wantAdd, _ := diffIDs(prev, want)
			if !sameIDs(added, wantAdd) {
				t.Logf("insert delta differs step %d (seed=%d): got %v want %v", step, seed, added, wantAdd)
				return false
			}
		}
		// A view rebuilt from scratch on the final epoch agrees — the
		// resubscribe-after-crash equivalence at the rdb layer.
		fresh, err := BuildViewState(db, p)
		if err != nil {
			return false
		}
		return sameIDs(fresh.AnswerIDs(), vs.AnswerIDs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// treeDoc is a miniature live store: a rooted tree with typed nodes, the
// interval encoding, and store-style COW updates.
type treeDoc struct {
	db     *DB
	relOf  map[int]string
	nextID int
}

func makeTree(r *rand.Rand, n, nRels int) *treeDoc {
	td := &treeDoc{db: NewDB(), relOf: map[int]string{}, nextID: n + 1}
	vocab := []string{"", "a", "b", "c"}
	for id := 1; id <= n; id++ {
		parent := 0
		if id > 1 {
			parent = 1 + r.Intn(id-1)
		}
		rel := fmt.Sprintf("R%d", r.Intn(nRels))
		td.relOf[id] = rel
		td.db.Insert(rel, parent, id, vocab[r.Intn(len(vocab))])
	}
	td.db.DTDFP = "fp-tree-test"
	td.db.RebuildIntervals()
	return td
}

func (td *treeDoc) subtree(root int) []int {
	children := map[int][]int{}
	for id, p := range td.db.ParentOf {
		children[p] = append(children[p], id)
	}
	for _, kids := range children {
		sort.Ints(kids)
	}
	var out []int
	var walk func(id int)
	walk = func(id int) {
		out = append(out, id)
		for _, k := range children[id] {
			walk(k)
		}
	}
	walk(root)
	return out
}

// insert grafts a small chain of fresh nodes under an existing parent and
// returns the new epoch plus the base delta, store-style.
func (td *treeDoc) insert(r *rand.Rand) (*DB, BaseDelta) {
	vocab := []string{"", "a", "b", "c"}
	existing := make([]int, 0, len(td.db.Vals))
	for id := range td.db.Vals {
		existing = append(existing, id)
	}
	sort.Ints(existing)
	parent := existing[r.Intn(len(existing))]
	db2 := cowDB(td.db)
	bd := BaseDelta{Rows: map[string][]DeltaEdge{}}
	k := 1 + r.Intn(3)
	anchors := []int{parent}
	for i := 0; i < k; i++ {
		id := td.nextID
		td.nextID++
		f := anchors[r.Intn(len(anchors))]
		rel := fmt.Sprintf("R%d", r.Intn(3))
		v := vocab[r.Intn(len(vocab))]
		td.relOf[id] = rel
		db2.Insert(rel, f, id, v)
		bd.Rows[rel] = append(bd.Rows[rel], DeltaEdge{F: f, T: id, V: v})
		bd.NewIDs = append(bd.NewIDs, id)
		anchors = append(anchors, id)
	}
	db2.RebuildIntervals()
	return db2, bd
}

// del removes a random non-root subtree and returns the new epoch, the
// subtree root and the preorder deleted IDs. Returns nil when no deletable
// node exists.
func (td *treeDoc) del(r *rand.Rand) (*DB, int, []int) {
	var candidates []int
	for id := range td.db.Vals {
		if id != 1 {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		return nil, 0, nil
	}
	sort.Ints(candidates)
	root := candidates[r.Intn(len(candidates))]
	deleted := td.subtree(root)
	db2 := cowDB(td.db)
	touched := map[string]bool{}
	for _, id := range deleted {
		rel := td.relOf[id]
		db2.Rel(rel).Delete(db2.ParentOf[id], id)
		touched[rel] = true
		delete(db2.Vals, id)
		delete(db2.ParentOf, id)
		delete(db2.Labels, id)
	}
	for rel := range touched {
		db2.Rel(rel).Compact()
	}
	db2.RebuildIntervals()
	return db2, root, deleted
}

// text rewrites one node's value in place, store-style (structure and
// intervals untouched).
func (td *treeDoc) text(r *rand.Rand) (*DB, int) {
	existing := make([]int, 0, len(td.db.Vals))
	for id := range td.db.Vals {
		existing = append(existing, id)
	}
	sort.Ints(existing)
	id := existing[r.Intn(len(existing))]
	db2 := cowDB(td.db)
	v := []string{"", "a", "b", "z"}[r.Intn(4)]
	db2.Rel(td.relOf[id]).UpdateValue(db2.ParentOf[id], id, v)
	db2.Vals[id] = v
	return db2, id
}

// randTreePlan adds DescScan (both the interval kernel and the generic
// fallback) to the insertable fragment; withSemi gates Semijoin so the same
// generator covers the deletable fragment.
func randTreePlan(r *rand.Rand, depth, nRels int, temps []string, withSemi bool) ra.Plan {
	baseRel := func() string { return fmt.Sprintf("R%d", r.Intn(nRels)) }
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			if len(temps) > 0 {
				return ra.Temp{Name: temps[r.Intn(len(temps))]}
			}
			return ra.Base{Rel: baseRel()}
		case 1:
			return ra.RootSeed{}
		default:
			return ra.Base{Rel: baseRel()}
		}
	}
	child := func() ra.Plan { return randTreePlan(r, depth-1, nRels, temps, withSemi) }
	switch r.Intn(11) {
	case 0:
		return ra.Compose{L: child(), R: child()}
	case 1:
		return ra.UnionAll{Kids: []ra.Plan{child(), child()}}
	case 2:
		fx := ra.Fix{Seed: child()}
		if r.Intn(2) == 0 {
			fx.Start = child()
		}
		if r.Intn(2) == 0 {
			fx.End = child()
		}
		return fx
	case 3:
		return ra.SelectVal{Child: child(), Val: []string{"a", "b", "z"}[r.Intn(3)]}
	case 4:
		return ra.SelectRoot{Child: child()}
	case 5:
		if withSemi {
			return ra.Semijoin{L: child(), R: child()}
		}
		return ra.Compose{L: child(), R: child()}
	case 6:
		return ra.TypeFilter{Child: child(), Rel: baseRel(), OnF: r.Intn(2) == 0}
	case 7:
		return ra.IdentOf{Child: child(), OnF: r.Intn(2) == 0}
	case 8, 9:
		ds := ra.DescScan{From: baseRel(), To: baseRel(), Alt: ra.Fix{Seed: child()}}
		if r.Intn(3) == 0 {
			ds.Start = child()
		}
		if r.Intn(3) == 0 {
			ds.End = child()
		}
		return ds
	default:
		return ra.Ident{}
	}
}

func randTreeProgram(r *rand.Rand, nRels int, withSemi bool) *ra.Program {
	nStmts := 1 + r.Intn(3)
	var stmts []ra.Stmt
	var temps []string
	for i := 0; i < nStmts; i++ {
		name := fmt.Sprintf("s%d", i)
		stmts = append(stmts, ra.Stmt{Name: name, Plan: randTreePlan(r, 1+r.Intn(3), nRels, temps, withSemi)})
		temps = append(temps, name)
	}
	return &ra.Program{Stmts: stmts, Result: temps[len(temps)-1], DTDFP: "fp-tree-test"}
}

// TestViewMixedUpdateDifferential: random view programs over random rooted
// trees driven through store-style insert/delete/text epochs, applying the
// ivm maintenance matrix (delta when the fragment allows, Rebuild
// otherwise); the maintained answer and every published delta must match
// full re-execution on each epoch.
func TestViewMixedUpdateDifferential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nRels := 1 + r.Intn(3)
		td := makeTree(r, 4+r.Intn(12), nRels)
		p := randTreeProgram(r, nRels, r.Intn(2) == 0)

		vs, err := BuildViewState(td.db, p)
		if err != nil {
			t.Logf("build (seed=%d): %v", seed, err)
			return false
		}
		if !sameIDs(vs.AnswerIDs(), fullAnswer(t, td.db, p)) {
			t.Logf("initial answer differs (seed=%d)", seed)
			return false
		}
		for step := 0; step < 6; step++ {
			prev := vs.AnswerIDs()
			var db2 *DB
			var gotAdd, gotRem []int
			switch op := r.Intn(4); {
			case op == 0: // delete
				var root int
				var deleted []int
				db2, root, deleted = td.del(r)
				if db2 == nil {
					continue
				}
				if vs.Deletable() {
					gotAdd, gotRem = applyOrRebuild(t, vs, func() ([]int, []int, error) {
						rm, err := vs.ApplyDelete(db2, td.db, root, deleted)
						return nil, rm, err
					}, db2)
				} else {
					if gotAdd, gotRem, err = vs.Rebuild(db2); err != nil {
						t.Logf("rebuild after delete (seed=%d): %v", seed, err)
						return false
					}
				}
			case op == 1: // text update
				db2, _ = td.text(r)
				if vs.TextImmune() {
					if err := vs.ApplyText(db2); err != nil {
						t.Logf("ApplyText (seed=%d): %v", seed, err)
						return false
					}
				} else {
					if gotAdd, gotRem, err = vs.Rebuild(db2); err != nil {
						t.Logf("rebuild after text (seed=%d): %v", seed, err)
						return false
					}
				}
			default: // insert
				var bd BaseDelta
				db2, bd = td.insert(r)
				if vs.Insertable() {
					gotAdd, gotRem = applyOrRebuild(t, vs, func() ([]int, []int, error) {
						a, err := vs.ApplyInsert(db2, bd)
						return a, nil, err
					}, db2)
				} else {
					if gotAdd, gotRem, err = vs.Rebuild(db2); err != nil {
						t.Logf("rebuild after insert (seed=%d): %v", seed, err)
						return false
					}
				}
			}
			td.db = db2
			want := fullAnswer(t, td.db, p)
			if !sameIDs(vs.AnswerIDs(), want) {
				t.Logf("answer differs after step %d (seed=%d)\nmaintained: %v\nfull:       %v",
					step, seed, vs.AnswerIDs(), want)
				return false
			}
			wantAdd, wantRem := diffIDs(prev, want)
			if !sameIDs(gotAdd, wantAdd) || !sameIDs(gotRem, wantRem) {
				t.Logf("delta differs at step %d (seed=%d): got (+%v,-%v) want (+%v,-%v)",
					step, seed, gotAdd, gotRem, wantAdd, wantRem)
				return false
			}
		}
		fresh, err := BuildViewState(td.db, p)
		if err != nil {
			return false
		}
		return sameIDs(fresh.AnswerIDs(), vs.AnswerIDs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestViewOpaqueFallback: non-monotone plans must classify as opaque and
// still maintain exact answers through Rebuild diffs.
func TestViewOpaqueFallback(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	db := randDB(r, 12, 2)
	p := &ra.Program{Stmts: []ra.Stmt{{
		Name: "result",
		Plan: ra.Antijoin{L: ra.Base{Rel: "R0"}, R: ra.Base{Rel: "R1"}},
	}}, Result: "result"}
	vs, err := BuildViewState(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if vs.Insertable() || vs.Deletable() {
		t.Fatal("antijoin view must not be incrementally maintainable")
	}
	if !vs.TextImmune() {
		t.Fatal("antijoin over bases has no value selection; should be text-immune")
	}
	if !sameIDs(vs.AnswerIDs(), fullAnswer(t, db, p)) {
		t.Fatal("opaque initial answer differs")
	}
	prev := vs.AnswerIDs()
	db2 := cowDB(db)
	db2.Insert("R1", 0, 13, "")
	added, removed, err := vs.Rebuild(db2)
	if err != nil {
		t.Fatal(err)
	}
	want := fullAnswer(t, db2, p)
	if !sameIDs(vs.AnswerIDs(), want) {
		t.Fatalf("opaque answer differs after rebuild: got %v want %v", vs.AnswerIDs(), want)
	}
	wantAdd, wantRem := diffIDs(prev, want)
	if !sameIDs(added, wantAdd) || !sameIDs(removed, wantRem) {
		t.Fatalf("opaque rebuild delta: got (+%v,-%v) want (+%v,-%v)", added, removed, wantAdd, wantRem)
	}
}

// TestViewClassification pins the fragment boundaries the ivm maintenance
// matrix relies on.
func TestViewClassification(t *testing.T) {
	mk := func(pl ra.Plan) *ViewState {
		db := NewDB()
		db.Insert("R0", 0, 1, "a")
		db.Insert("R1", 1, 2, "b")
		vs, err := BuildViewState(db, &ra.Program{
			Stmts: []ra.Stmt{{Name: "result", Plan: pl}}, Result: "result"})
		if err != nil {
			t.Fatal(err)
		}
		return vs
	}
	vs := mk(ra.Fix{Seed: ra.Base{Rel: "R0"}})
	if !vs.Insertable() || !vs.Deletable() || !vs.TextImmune() {
		t.Fatal("plain fixpoint should be fully maintainable")
	}
	vs = mk(ra.Semijoin{L: ra.Base{Rel: "R0"}, R: ra.Base{Rel: "R1"}})
	if !vs.Insertable() || vs.Deletable() {
		t.Fatal("semijoin: insertable but not deletable")
	}
	vs = mk(ra.SelectVal{Child: ra.Base{Rel: "R0"}, Val: "a"})
	if vs.TextImmune() {
		t.Fatal("value selection must not be text-immune")
	}
	vs = mk(ra.Fix{Seed: ra.Base{Rel: "R0"}, TrackPaths: true})
	if vs.Insertable() || vs.Deletable() {
		t.Fatal("tracked paths must fall back to opaque")
	}
}
