package rdb

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"xpath2sql/internal/obs"
	"xpath2sql/internal/ra"
)

// RunParallel evaluates the program with up to workers concurrent statement
// evaluations. Statements form a DAG through their temp references; a
// statement is scheduled once all statements it references have finished,
// so independent branches — the per-cycle edge relations of a closure seed,
// the per-query sections of a batch — run concurrently. Only statements
// reachable from the result are evaluated (the top-down strategy of §5.2).
//
// Every statement runs in its own evaluator over an immutable snapshot of
// its dependencies; inside a statement, large joins and fixpoint deltas may
// additionally fan out morsel-parallel (Exec.Parallelism is set to the same
// worker count). Statistics are summed across workers.
func RunParallel(db *DB, p *ra.Program, workers int) (*Relation, *Stats, error) {
	return RunParallelCtx(context.Background(), db, p, workers, obs.Limits{}, nil)
}

// RunParallelCtx is RunParallel with cancellation, resource limits and
// tracing. ctx.Err() is checked before each statement and between fixpoint
// iterations inside statements. Limits.Timeout and Limits.MaxLFPIters are
// enforced exactly as in the serial engine; Limits.MaxTuples is enforced
// per statement while it runs and against the cross-worker total as each
// statement completes. When trace is non-nil, each statement's evaluator
// records its own events, merged deterministically (program order) after
// the run, so a parallel trace is byte-for-byte reproducible regardless of
// scheduling.
func RunParallelCtx(ctx context.Context, db *DB, p *ra.Program, workers int, limits obs.Limits, trace *obs.Trace) (*Relation, *Stats, error) {
	return RunParallelIntervalsCtx(ctx, db, p, workers, limits, trace, IntervalAuto)
}

// RunParallelIntervalsCtx is RunParallelCtx with an explicit interval mode
// for the per-statement executors (see Exec.IntervalMode); the differential
// harness uses IntervalOff/IntervalForce to pin the physical path.
func RunParallelIntervalsCtx(ctx context.Context, db *DB, p *ra.Program, workers int, limits obs.Limits, trace *obs.Trace, mode IntervalMode) (*Relation, *Stats, error) {
	done, stats, err := runParallelRoots(ctx, db, p, []string{p.Result}, workers, limits, trace, mode)
	if err != nil {
		return nil, nil, err
	}
	return done[p.Result], stats, nil
}

// RunParallelMultiCtx evaluates the program once with up to workers
// concurrent statement evaluations and returns the relation of every named
// result, in order. Statements shared between results — the cross-query
// common sub-queries of a batch — are scheduled and evaluated exactly once.
// Cancellation, limits and tracing behave as in RunParallelCtx.
func RunParallelMultiCtx(ctx context.Context, db *DB, p *ra.Program, results []string, workers int, limits obs.Limits, trace *obs.Trace) ([]*Relation, *Stats, error) {
	done, stats, err := runParallelRoots(ctx, db, p, results, workers, limits, trace, IntervalAuto)
	if err != nil {
		return nil, nil, err
	}
	rels := make([]*Relation, len(results))
	for i, name := range results {
		rels[i] = done[name]
	}
	return rels, stats, nil
}

// runParallelRoots is the shared scheduler: it evaluates every statement
// reachable from any root and returns the completed relations by name.
func runParallelRoots(ctx context.Context, db *DB, p *ra.Program, roots []string, workers int, limits obs.Limits, trace *obs.Trace, mode IntervalMode) (map[string]*Relation, *Stats, error) {
	if workers < 1 {
		workers = 1
	}
	byName := map[string]ra.Plan{}
	for _, s := range p.Stmts {
		if _, dup := byName[s.Name]; dup {
			return nil, nil, fmt.Errorf("rdb: duplicate statement %q", s.Name)
		}
		byName[s.Name] = s.Plan
	}
	for _, root := range roots {
		if _, ok := byName[root]; !ok {
			return nil, nil, fmt.Errorf("rdb: unknown result statement %q", root)
		}
	}

	// Dependencies restricted to statements reachable from some root.
	deps := map[string][]string{}
	var reach func(name string) error
	visiting := map[string]int{} // 0 new, 1 visiting, 2 done
	reach = func(name string) error {
		switch visiting[name] {
		case 1:
			return fmt.Errorf("rdb: cyclic statement reference %q", name)
		case 2:
			return nil
		}
		visiting[name] = 1
		var ds []string
		for _, d := range ra.TempRefs(byName[name]) {
			if _, ok := byName[d]; !ok {
				return fmt.Errorf("rdb: unknown statement %q", d)
			}
			ds = append(ds, d)
			if err := reach(d); err != nil {
				return err
			}
		}
		sort.Strings(ds)
		deps[name] = ds
		visiting[name] = 2
		return nil
	}
	for _, root := range roots {
		if err := reach(root); err != nil {
			return nil, nil, err
		}
	}

	// Reverse edges and indegrees for scheduling.
	dependents := map[string][]string{}
	indeg := map[string]int{}
	for name, ds := range deps {
		indeg[name] = len(ds)
		for _, d := range ds {
			dependents[d] = append(dependents[d], name)
		}
	}

	start := time.Now()
	var deadline time.Time
	if limits.Timeout > 0 {
		deadline = start.Add(limits.Timeout)
	}
	var (
		mu      sync.Mutex
		done    = map[string]*Relation{}
		total   Stats
		traces  []*obs.Trace
		firstEr error
		closed  bool
	)
	ready := make(chan string, len(deps))
	for name, n := range indeg {
		if n == 0 {
			ready <- name
		}
	}
	var wg sync.WaitGroup
	remaining := len(deps)
	complete := func(name string, rel *Relation, st Stats, tr *obs.Trace, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil && firstEr == nil {
			firstEr = err
		}
		done[name] = rel
		addStats(&total, st)
		if tr != nil {
			traces = append(traces, tr)
		}
		if firstEr == nil && limits.MaxTuples > 0 && total.TuplesOut > limits.MaxTuples {
			firstEr = &obs.LimitError{
				Kind: obs.LimitTuples, Stmt: name,
				Limit: int64(limits.MaxTuples), Actual: int64(total.TuplesOut),
			}
		}
		remaining--
		if closed {
			return
		}
		if firstEr != nil || remaining == 0 {
			closed = true
			close(ready)
			return
		}
		for _, dep := range dependents[name] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready <- dep
			}
		}
	}

	work := func() {
		defer wg.Done()
		for name := range ready {
			if err := ctx.Err(); err != nil {
				complete(name, nil, Stats{}, nil, err)
				continue
			}
			// Snapshot the dependencies into a private environment.
			mu.Lock()
			env := make(map[string]*Relation, len(deps[name]))
			for _, d := range deps[name] {
				env[d] = done[d]
			}
			mu.Unlock()
			ex := NewExec(db)
			ex.Limits = limits
			ex.Parallelism = workers
			ex.IntervalMode = mode
			// Keep the program-level DTD fingerprint visible to the single
			// statement's executor: the DescScan gate reads it.
			ex.prog = &ra.Program{Stmts: []ra.Stmt{{Name: name, Plan: byName[name]}}, Result: name, DTDFP: p.DTDFP}
			ex.env = env
			ex.running = map[string]bool{}
			ex.ctx = ctx
			ex.start = start
			ex.deadline = deadline
			var tr *obs.Trace
			if trace != nil {
				tr = &obs.Trace{}
				ex.trace = tr
			}
			rel, err := ex.stmt(name)
			complete(name, rel, ex.Stats, tr, err)
		}
	}
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go work()
	}
	wg.Wait()
	if trace != nil {
		order := make(map[string]int, len(p.Stmts))
		for i, s := range p.Stmts {
			order[s.Name] = i
		}
		trace.Merge(order, traces...)
	}
	if firstEr != nil {
		return nil, nil, firstEr
	}
	return done, &total, nil
}

func addStats(total *Stats, s Stats) {
	total.Joins += s.Joins
	total.Unions += s.Unions
	total.LFPs += s.LFPs
	total.LFPIters += s.LFPIters
	total.RecFixes += s.RecFixes
	total.TuplesOut += s.TuplesOut
	total.StmtsRun += s.StmtsRun
	total.Morsels += s.Morsels
	total.DescScans += s.DescScans
}
