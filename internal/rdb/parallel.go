package rdb

import (
	"fmt"
	"sort"
	"sync"

	"xpath2sql/internal/ra"
)

// RunParallel evaluates the program with up to workers concurrent statement
// evaluations. Statements form a DAG through their temp references; a
// statement is scheduled once all statements it references have finished,
// so independent branches — the per-cycle edge relations of a closure seed,
// the per-query sections of a batch — run concurrently. Only statements
// reachable from the result are evaluated (the top-down strategy of §5.2).
//
// Every statement runs in its own single-threaded evaluator over an
// immutable snapshot of its dependencies, so plans need no internal
// synchronization. Statistics are summed across workers.
func RunParallel(db *DB, p *ra.Program, workers int) (*Relation, *Stats, error) {
	if workers < 1 {
		workers = 1
	}
	byName := map[string]ra.Plan{}
	for _, s := range p.Stmts {
		if _, dup := byName[s.Name]; dup {
			return nil, nil, fmt.Errorf("rdb: duplicate statement %q", s.Name)
		}
		byName[s.Name] = s.Plan
	}
	if _, ok := byName[p.Result]; !ok {
		return nil, nil, fmt.Errorf("rdb: unknown result statement %q", p.Result)
	}

	// Dependencies restricted to statements reachable from the result.
	deps := map[string][]string{}
	var reach func(name string) error
	visiting := map[string]int{} // 0 new, 1 visiting, 2 done
	reach = func(name string) error {
		switch visiting[name] {
		case 1:
			return fmt.Errorf("rdb: cyclic statement reference %q", name)
		case 2:
			return nil
		}
		visiting[name] = 1
		var ds []string
		for _, d := range ra.TempRefs(byName[name]) {
			if _, ok := byName[d]; !ok {
				return fmt.Errorf("rdb: unknown statement %q", d)
			}
			ds = append(ds, d)
			if err := reach(d); err != nil {
				return err
			}
		}
		sort.Strings(ds)
		deps[name] = ds
		visiting[name] = 2
		return nil
	}
	if err := reach(p.Result); err != nil {
		return nil, nil, err
	}

	// Reverse edges and indegrees for scheduling.
	dependents := map[string][]string{}
	indeg := map[string]int{}
	for name, ds := range deps {
		indeg[name] = len(ds)
		for _, d := range ds {
			dependents[d] = append(dependents[d], name)
		}
	}

	var (
		mu      sync.Mutex
		done    = map[string]*Relation{}
		total   Stats
		firstEr error
		closed  bool
	)
	ready := make(chan string, len(deps))
	for name, n := range indeg {
		if n == 0 {
			ready <- name
		}
	}
	var wg sync.WaitGroup
	remaining := len(deps)
	complete := func(name string, rel *Relation, st Stats, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil && firstEr == nil {
			firstEr = err
		}
		done[name] = rel
		addStats(&total, st)
		remaining--
		if closed {
			return
		}
		if firstEr != nil || remaining == 0 {
			closed = true
			close(ready)
			return
		}
		for _, dep := range dependents[name] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready <- dep
			}
		}
	}

	work := func() {
		defer wg.Done()
		for name := range ready {
			// Snapshot the dependencies into a private environment.
			mu.Lock()
			env := make(map[string]*Relation, len(deps[name]))
			for _, d := range deps[name] {
				env[d] = done[d]
			}
			mu.Unlock()
			ex := NewExec(db)
			ex.prog = &ra.Program{Stmts: []ra.Stmt{{Name: name, Plan: byName[name]}}, Result: name}
			ex.env = env
			ex.running = map[string]bool{}
			rel, err := ex.stmt(name)
			complete(name, rel, ex.Stats, err)
		}
	}
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go work()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, nil, firstEr
	}
	return done[p.Result], &total, nil
}

func addStats(total *Stats, s Stats) {
	total.Joins += s.Joins
	total.Unions += s.Unions
	total.LFPs += s.LFPs
	total.LFPIters += s.LFPIters
	total.RecFixes += s.RecFixes
	total.TuplesOut += s.TuplesOut
	total.StmtsRun += s.StmtsRun
}
