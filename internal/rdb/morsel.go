package rdb

import (
	"sync"
	"sync/atomic"
	"time"

	"xpath2sql/internal/obs"
)

// Morsel-driven intra-operator parallelism: the probe side of a hash join or
// the delta of a fixpoint iteration is split into fixed-size morsels, worker
// goroutines claim morsels from a shared counter and scan them into private
// candidate buffers, and the single-threaded merge step then folds the
// buffers into the output relation *in morsel order* — so the tuple
// insertion order, the (F, T) dedup outcomes and every statistic are
// byte-identical to a serial run regardless of scheduling.
//
// Workers only read shared state (the build-side index, the context, the
// deadline); all mutation happens in the merge step on the operator's
// goroutine. Cancellation and the wall-clock limit are checked once per
// morsel, so a cancelled run abandons the scan within one morsel's work.

// morselRows is the number of probe rows per morsel. It is a variable so
// tests can force multi-morsel scans on small inputs.
var morselRows = 2048

// cand is one candidate output tuple produced by a morsel scan. baseF/baseT
// carry the delta tuple a fixpoint expansion extended, which the merge step
// needs for witnessing-path bookkeeping; joins leave them zero.
type cand struct {
	out          row
	baseF, baseT int32
}

// parWorkers returns how many workers a scan over n rows should use: never
// more than the configured parallelism, never more than the morsel count,
// and 1 when the input is too small to be worth fanning out.
func (e *Exec) parWorkers(n int) int {
	w := e.Parallelism
	if w < 2 || n < 2*morselRows {
		return 1
	}
	if m := (n + morselRows - 1) / morselRows; w > m {
		w = m
	}
	return w
}

// morselCheck enforces cancellation and the wall-clock budget from a worker
// goroutine. It reads only fields that are frozen while an operator runs
// (ctx, deadline, the statement stack), so it is safe to call concurrently.
func (e *Exec) morselCheck() error {
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return err
		}
	}
	if !e.deadline.IsZero() {
		if now := time.Now(); now.After(e.deadline) {
			return &obs.LimitError{
				Kind: obs.LimitTimeout, Stmt: e.curStmt(),
				Limit: int64(e.Limits.Timeout), Actual: int64(now.Sub(e.start)),
			}
		}
	}
	return nil
}

// scanMorsels runs scan over [0, n) split into morsels on the given number
// of workers and returns the per-morsel candidate buffers in morsel order.
// scan must be read-only with respect to the executor and its relations.
func (e *Exec) scanMorsels(n, workers int, scan func(lo, hi int, buf []cand) []cand) ([][]cand, error) {
	m := (n + morselRows - 1) / morselRows
	bufs := make([][]cand, m)
	var (
		next    atomic.Int64
		stop    atomic.Bool
		errMu   sync.Mutex
		firstEr error
		wg      sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= m || stop.Load() {
					return
				}
				if err := e.morselCheck(); err != nil {
					errMu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					errMu.Unlock()
					stop.Store(true)
					return
				}
				lo := i * morselRows
				hi := lo + morselRows
				if hi > n {
					hi = n
				}
				bufs[i] = scan(lo, hi, nil)
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	e.Stats.Morsels += m
	return bufs, nil
}
