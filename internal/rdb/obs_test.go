package rdb

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"xpath2sql/internal/obs"
	"xpath2sql/internal/ra"
)

// traceProg is a small multi-statement program: a transitive closure feeding
// a join, so the trace has distinct ops and nested statement references.
func traceProg() *ra.Program {
	return &ra.Program{
		Stmts: []ra.Stmt{
			{Name: "tc", Plan: ra.Fix{Seed: ra.Base{Rel: "E"}}},
			{Name: "hop", Plan: ra.Compose{L: ra.Temp{Name: "tc"}, R: ra.Base{Rel: "E"}}},
			{Name: "result", Plan: ra.UnionAll{Kids: []ra.Plan{ra.Temp{Name: "tc"}, ra.Temp{Name: "hop"}}}},
		},
		Result: "result",
	}
}

func TestTraceEventsMatchStats(t *testing.T) {
	db := chainDB(8)
	ex := NewExec(db)
	var tr obs.Trace
	if _, err := ex.RunCtx(context.Background(), traceProg(), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != ex.Stats.StmtsRun {
		t.Fatalf("events = %d, StmtsRun = %d", len(tr.Events), ex.Stats.StmtsRun)
	}
	// Exclusive per-statement accounting: event sums equal global counters.
	tot := tr.Totals()
	if got, want := tot.Ops, ex.Stats.Ops(); got != want {
		t.Fatalf("trace totals %+v != stats %+v", got, want)
	}
	byName := map[string]obs.StmtEvent{}
	for _, ev := range tr.Events {
		byName[ev.Stmt] = ev
	}
	// The fixpoint's event carries its iteration count and the closure size.
	tc := byName["tc"]
	if tc.Op != "fix" || tc.Ops.LFPs != 1 || tc.Ops.LFPIters == 0 {
		t.Fatalf("tc event = %+v", tc)
	}
	if tc.Out != 7*8/2 { // closure of a 7-edge chain: n(n+1)/2 pairs
		t.Fatalf("tc out = %d", tc.Out)
	}
	// Nested work (evaluating "tc" on behalf of "hop") is charged to "tc"
	// alone: the union statement performs no joins or fixpoints.
	res := byName["result"]
	if res.Ops.Joins != 0 || res.Ops.LFPs != 0 {
		t.Fatalf("union charged nested work: %+v", res.Ops)
	}
	// Explain renders one line per statement plus a footer.
	text := obs.Explain(traceProg(), &tr, nil)
	for _, want := range []string{"tc", "hop", "result", "fix", "union", "iters"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Explain missing %q:\n%s", want, text)
		}
	}
}

// TestCancelDuringFix: cancelling the context mid-fixpoint returns promptly
// with context.Canceled. The chain is long enough that its unbounded
// transitive closure (quadratic in the chain length) takes many seconds.
func TestCancelDuringFix(t *testing.T) {
	db := chainDB(4000)
	ex := NewExec(db)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err := ex.RunCtx(ctx, prog(ra.Fix{Seed: ra.Base{Rel: "E"}}), nil)
	elapsed := time.Since(t0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, not prompt", elapsed)
	}
	// The executor stays usable after a cancelled run.
	if _, err := ex.RunCtx(context.Background(), prog(ra.Base{Rel: "E"}), nil); err != nil {
		t.Fatalf("executor unusable after cancel: %v", err)
	}
}

func TestDeadlinePassthrough(t *testing.T) {
	db := chainDB(4000)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := NewExec(db).RunCtx(ctx, prog(ra.Fix{Seed: ra.Base{Rel: "E"}}), nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestTimeoutLimit(t *testing.T) {
	db := chainDB(4000)
	ex := NewExec(db)
	ex.Limits = obs.Limits{Timeout: 5 * time.Millisecond}
	_, err := ex.RunCtx(context.Background(), prog(ra.Fix{Seed: ra.Base{Rel: "E"}}), nil)
	var le *obs.LimitError
	if !errors.As(err, &le) || le.Kind != obs.LimitTimeout {
		t.Fatalf("err = %v, want timeout LimitError", err)
	}
	if !errors.Is(err, obs.ErrLimit) {
		t.Fatalf("LimitError does not unwrap to ErrLimit")
	}
}

func TestMaxLFPItersNamesStatement(t *testing.T) {
	db := chainDB(10)
	p := &ra.Program{
		Stmts:  []ra.Stmt{{Name: "closure", Plan: ra.Fix{Seed: ra.Base{Rel: "E"}}}},
		Result: "closure",
	}
	ex := NewExec(db)
	ex.Limits = obs.Limits{MaxLFPIters: 1}
	_, err := ex.RunCtx(context.Background(), p, nil)
	var le *obs.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *obs.LimitError", err)
	}
	if le.Kind != obs.LimitLFPIters || le.Stmt != "closure" {
		t.Fatalf("LimitError = %+v, want LFP-iters limit naming \"closure\"", le)
	}
	// A closure that genuinely converges in one iteration is unaffected.
	ex2 := NewExec(chainDB(2))
	ex2.Limits = obs.Limits{MaxLFPIters: 1}
	if _, err := ex2.RunCtx(context.Background(), p, nil); err != nil {
		t.Fatalf("one-iteration closure tripped the limit: %v", err)
	}
}

func TestMaxLFPItersRecUnion(t *testing.T) {
	db := NewDB()
	db.Insert("Rd", 0, 1, "")
	db.Insert("Rc", 1, 2, "")
	db.Insert("Rc", 2, 3, "")
	db.Insert("Rc", 3, 4, "")
	rec := ra.RecUnion{
		Init:  []ra.Tagged{{Tag: "c", Plan: ra.Compose{L: ra.IdentOf{Child: ra.Base{Rel: "Rd"}}, R: ra.Base{Rel: "Rc"}}}},
		Edges: []ra.RecEdge{{FromTag: "c", ToTag: "c", Rel: ra.Base{Rel: "Rc"}}},
	}
	ex := NewExec(db)
	ex.Limits = obs.Limits{MaxLFPIters: 1}
	_, err := ex.RunCtx(context.Background(), prog(rec), nil)
	var le *obs.LimitError
	if !errors.As(err, &le) || le.Kind != obs.LimitLFPIters {
		t.Fatalf("err = %v, want LFP-iters LimitError from RecUnion", err)
	}
}

func TestMaxTuples(t *testing.T) {
	db := chainDB(200)
	ex := NewExec(db)
	ex.Limits = obs.Limits{MaxTuples: 50}
	_, err := ex.RunCtx(context.Background(), prog(ra.Fix{Seed: ra.Base{Rel: "E"}}), nil)
	var le *obs.LimitError
	if !errors.As(err, &le) || le.Kind != obs.LimitTuples {
		t.Fatalf("err = %v, want tuple-count LimitError", err)
	}
	if le.Actual <= le.Limit {
		t.Fatalf("LimitError counts wrong: %+v", le)
	}
}

func TestParallelTraceDeterministic(t *testing.T) {
	db := chainDB(40, [2]int{40, 7})
	p := &ra.Program{
		Stmts: []ra.Stmt{
			{Name: "tc", Plan: ra.Fix{Seed: ra.Base{Rel: "E"}}},
			{Name: "back", Plan: ra.Compose{L: ra.Base{Rel: "E"}, R: ra.Base{Rel: "E"}}},
			{Name: "result", Plan: ra.UnionAll{Kids: []ra.Plan{ra.Temp{Name: "tc"}, ra.Temp{Name: "back"}}}},
		},
		Result: "result",
	}
	var ref []string
	for round := 0; round < 5; round++ {
		var tr obs.Trace
		rel, stats, err := RunParallelCtx(context.Background(), db, p, 4, obs.Limits{}, &tr)
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() == 0 || stats.TuplesOut == 0 {
			t.Fatalf("round %d: empty result", round)
		}
		var names []string
		for _, ev := range tr.Events {
			names = append(names, ev.Stmt)
		}
		if round == 0 {
			ref = names
			continue
		}
		if len(names) != len(ref) {
			t.Fatalf("round %d: %v vs %v", round, names, ref)
		}
		for i := range names {
			if names[i] != ref[i] {
				t.Fatalf("round %d: nondeterministic order %v vs %v", round, names, ref)
			}
		}
	}
}

func TestParallelLimits(t *testing.T) {
	db := chainDB(200)
	p := prog(ra.Fix{Seed: ra.Base{Rel: "E"}})
	_, _, err := RunParallelCtx(context.Background(), db, p, 4, obs.Limits{MaxLFPIters: 1}, nil)
	var le *obs.LimitError
	if !errors.As(err, &le) || le.Kind != obs.LimitLFPIters {
		t.Fatalf("parallel err = %v, want LFP-iters LimitError", err)
	}
	_, _, err = RunParallelCtx(context.Background(), db, p, 4, obs.Limits{MaxTuples: 10}, nil)
	if !errors.Is(err, obs.ErrLimit) {
		t.Fatalf("parallel err = %v, want ErrLimit", err)
	}
}

func TestParallelCancel(t *testing.T) {
	db := chainDB(4000)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, _, err := RunParallelCtx(ctx, db, prog(ra.Fix{Seed: ra.Base{Rel: "E"}}), 2, obs.Limits{}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("parallel cancellation took %v", elapsed)
	}
}
