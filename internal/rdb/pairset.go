package rdb

import "math/bits"

// pairSet is an open-addressing hash set of packed (F, T) pairs — the dedup
// structure behind Relation.Add. Compared with the seed's
// map[uint64]struct{} it stores one uint64 per slot, probes linearly with a
// Fibonacci-hashed start slot, and never allocates per insert, which matters
// because every tuple an operator produces passes through it.
//
// The empty-slot sentinel is ^uint64(0) and the deleted-slot sentinel is
// ^uint64(0)-1; the two keys equal to the sentinels (which node IDs never
// produce) are tracked by side flags so the set is still total over all
// uint64 keys. Deletion leaves a tombstone slot so probe chains stay intact;
// tombstones are reclaimed on insert and dropped wholesale by grow.
type pairSet struct {
	slots   []uint64
	shift   uint // 64 - log2(len(slots))
	used    int
	dels    int // tombstone slots (count toward the grow threshold)
	maxUsed int // grow threshold: 7/8 of len(slots)
	hasMax  bool
	hasDel  bool // membership of the key equal to pairDeleted
}

const (
	pairEmpty   = ^uint64(0)
	pairDeleted = ^uint64(0) - 1
)

// packPair packs two node IDs into the set's key. It matches the seed's
// tupleKey truncation to 32 bits per column.
func packPair(f, t int32) uint64 {
	return uint64(uint32(f))<<32 | uint64(uint32(t))
}

func newPairSet(capHint int) pairSet {
	n := 16
	for n < capHint*8/7+1 {
		n <<= 1
	}
	s := pairSet{slots: make([]uint64, n)}
	s.shift = uint(64 - bits.TrailingZeros(uint(n)))
	s.maxUsed = n * 7 / 8
	for i := range s.slots {
		s.slots[i] = pairEmpty
	}
	return s
}

func (s *pairSet) slot(k uint64) int {
	return int((k * 0x9E3779B97F4A7C15) >> s.shift)
}

// has reports membership.
func (s *pairSet) has(k uint64) bool {
	switch k {
	case pairEmpty:
		return s.hasMax
	case pairDeleted:
		return s.hasDel
	}
	if len(s.slots) == 0 {
		return false
	}
	mask := len(s.slots) - 1
	for i := s.slot(k); ; i = (i + 1) & mask {
		switch s.slots[i] {
		case k:
			return true
		case pairEmpty:
			return false
		}
	}
}

// insert adds k and reports whether it was new.
func (s *pairSet) insert(k uint64) bool {
	switch k {
	case pairEmpty:
		if s.hasMax {
			return false
		}
		s.hasMax = true
		return true
	case pairDeleted:
		if s.hasDel {
			return false
		}
		s.hasDel = true
		return true
	}
	if len(s.slots) == 0 {
		*s = newPairSet(16)
	}
	mask := len(s.slots) - 1
	free := -1
	for i := s.slot(k); ; i = (i + 1) & mask {
		switch s.slots[i] {
		case k:
			return false
		case pairDeleted:
			if free < 0 {
				free = i
			}
		case pairEmpty:
			if free >= 0 {
				s.slots[free] = k
				s.dels--
			} else {
				s.slots[i] = k
			}
			s.used++
			if s.used+s.dels >= s.maxUsed {
				s.grow()
			}
			return true
		}
	}
}

// remove deletes k and reports whether it was present. The slot becomes a
// tombstone so later probes for other keys keep walking the chain.
func (s *pairSet) remove(k uint64) bool {
	switch k {
	case pairEmpty:
		was := s.hasMax
		s.hasMax = false
		return was
	case pairDeleted:
		was := s.hasDel
		s.hasDel = false
		return was
	}
	if len(s.slots) == 0 {
		return false
	}
	mask := len(s.slots) - 1
	for i := s.slot(k); ; i = (i + 1) & mask {
		switch s.slots[i] {
		case k:
			s.slots[i] = pairDeleted
			s.used--
			s.dels++
			return true
		case pairEmpty:
			return false
		}
	}
}

func (s *pairSet) grow() {
	old := s.slots
	next := newPairSet(s.used * 2)
	next.hasMax = s.hasMax
	next.hasDel = s.hasDel
	mask := len(next.slots) - 1
	for _, k := range old {
		if k == pairEmpty || k == pairDeleted {
			continue
		}
		i := next.slot(k)
		for next.slots[i] != pairEmpty {
			i = (i + 1) & mask
		}
		next.slots[i] = k
		next.used++
	}
	*s = next
}

// clear empties the set keeping its slot array, so a pooled relation's next
// use starts from the capacity the previous request grew it to instead of
// re-walking the power-of-two ladder.
func (s *pairSet) clear() {
	for i := range s.slots {
		s.slots[i] = pairEmpty
	}
	s.used, s.dels = 0, 0
	s.hasMax, s.hasDel = false, false
}

// clone returns a deep copy.
func (s *pairSet) clone() pairSet {
	c := *s
	c.slots = append([]uint64(nil), s.slots...)
	return c
}
