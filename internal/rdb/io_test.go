package rdb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	db := NewDB()
	db.InsertLabeled("R_a", "a", 0, 1, "root value")
	db.InsertLabeled("R_b", "b", 1, 2, `tricky "quoted" \ value`)
	db.InsertLabeled("R_b", "b", 1, 3, "")
	db.Rel("R_empty") // declared but empty
	var sb strings.Builder
	if err := db.Save(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Load: %v\ntext:\n%s", err, sb.String())
	}
	if len(got.Rels) != len(db.Rels) {
		t.Fatalf("relations: %d vs %d", len(got.Rels), len(db.Rels))
	}
	for name, rel := range db.Rels {
		grel, ok := got.Rels[name]
		if !ok || grel.Len() != rel.Len() {
			t.Fatalf("relation %s mismatch", name)
		}
		for _, tp := range rel.Tuples() {
			if !grel.Has(tp.F, tp.T) {
				t.Fatalf("missing tuple %+v", tp)
			}
		}
	}
	if got.Vals[2] != db.Vals[2] || got.Labels[2] != "b" || got.ParentOf[3] != 1 {
		t.Fatalf("catalog mismatch: %v %v %v", got.Vals, got.Labels, got.ParentOf)
	}
	// Determinism: saving again produces identical text.
	var sb2 strings.Builder
	if err := got.Save(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Fatalf("save not deterministic:\n%s\nvs\n%s", sb.String(), sb2.String())
	}
}

// TestSaveLoadProperty round-trips randomly generated databases: arbitrary
// relation shapes (including empty and declared-only relations), V values
// drawn from an alphabet of quotes, backslashes, newlines, spaces and
// non-ASCII text, and tombstoned rows (which Save must omit). The round trip
// must reproduce the exact text on a second Save.
func TestSaveLoadProperty(t *testing.T) {
	pieces := []string{
		`"`, `\`, "\n", "\t", " ", "plain", "ünïcode", "日本語", "€", `\"escaped\"`,
		"line1\nline2", `trailing\`, "", "R 1 2", "# not a comment",
	}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB()
		nRels := rng.Intn(5)
		for r := 0; r < nRels; r++ {
			name := fmt.Sprintf("R_t%d", r)
			n := rng.Intn(6) // 0: declared but empty
			if n == 0 {
				db.Rel(name)
				continue
			}
			for i := 0; i < n; i++ {
				v := pieces[rng.Intn(len(pieces))] + pieces[rng.Intn(len(pieces))]
				id := r*100 + i + 1
				db.InsertLabeled(name, fmt.Sprintf("t%d", r), rng.Intn(id), id, v)
			}
			// Occasionally tombstone a row: Save writes live tuples only.
			if rel := db.Rel(name); rng.Intn(2) == 0 && rel.Len() > 1 {
				tp := rel.Tuples()[0]
				rel.Delete(tp.F, tp.T)
				delete(db.Vals, tp.T)
				delete(db.Labels, tp.T)
				delete(db.ParentOf, tp.T)
			}
		}
		var sb strings.Builder
		if err := db.Save(&sb); err != nil {
			t.Fatalf("seed %d: Save: %v", seed, err)
		}
		got, err := Load(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("seed %d: Load: %v\ntext:\n%s", seed, err, sb.String())
		}
		var sb2 strings.Builder
		if err := got.Save(&sb2); err != nil {
			t.Fatalf("seed %d: re-Save: %v", seed, err)
		}
		if sb.String() != sb2.String() {
			t.Fatalf("seed %d: round trip not identical:\n%q\nvs\n%q", seed, sb.String(), sb2.String())
		}
		if got.NumNodes() != db.NumNodes() {
			t.Fatalf("seed %d: %d nodes loaded, want %d", seed, got.NumNodes(), db.NumNodes())
		}
		for name, rel := range db.Rels {
			grel, ok := got.Rels[name]
			if !ok {
				t.Fatalf("seed %d: relation %s lost", seed, name)
			}
			if grel.Len() != rel.Len() {
				t.Fatalf("seed %d: relation %s: %d tuples loaded, want %d", seed, name, grel.Len(), rel.Len())
			}
			for _, tp := range rel.Tuples() {
				if !grel.Has(tp.F, tp.T) {
					t.Fatalf("seed %d: relation %s lost tuple %+v", seed, name, tp)
				}
			}
		}
	}
}

// TestLoadSkipsComments: snapshot files written by the document store prefix
// the Save body with a '#' header line; Load must skip it (and blank lines)
// without disturbing line numbering in errors.
func TestLoadSkipsComments(t *testing.T) {
	text := "# xpath2sql-snapshot v1 seq=3 lsn=9 next=42\n\nR R_a 0 1 \"v\"\nN 1 0 \"a\" \"v\"\n"
	db, err := Load(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if db.NumNodes() != 1 || !db.Rel("R_a").Has(0, 1) {
		t.Fatalf("header skip lost data: %d nodes", db.NumNodes())
	}
}

// TestLoadErrorLineNumbers: a corrupted line must be reported with its
// 1-based line number, counting skipped comment and blank lines.
func TestLoadErrorLineNumbers(t *testing.T) {
	cases := []struct {
		text string
		line string
	}{
		{"R R_a 0 1 \"v\"\nR R_a bad 2 \"v\"\n", "line 2"},
		{"# header\n\nR R_a 0 1 \"v\"\nN 1 0 \"a\" unquoted\n", "line 4"},
		{"Z mystery\n", "line 1"},
	}
	for _, c := range cases {
		_, err := Load(strings.NewReader(c.text))
		if err == nil {
			t.Errorf("Load(%q): expected error", c.text)
			continue
		}
		if !strings.Contains(err.Error(), c.line) {
			t.Errorf("Load(%q): error %q does not name %s", c.text, err, c.line)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	for _, bad := range []string{
		"X what is this",
		"R onlyname",
		"R rel notanumber 2 \"v\"",
		"R rel 1 2 unquoted",
		"N 1",
		"N x 0 \"a\" \"v\"",
	} {
		if _, err := Load(strings.NewReader(bad)); err == nil {
			t.Errorf("Load(%q): expected error", bad)
		}
	}
}

func TestLoadEmpty(t *testing.T) {
	db, err := Load(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if db.NumNodes() != 0 {
		t.Fatalf("nodes = %d", db.NumNodes())
	}
}

// TestSaveLoadIntervals: a v2 image (O/D records) round-trips the interval
// encoding and the DTD fingerprint, and saving the loaded copy reproduces
// the exact text.
func TestSaveLoadIntervals(t *testing.T) {
	db := NewDB()
	db.InsertLabeled("R_a", "a", 0, 1, "")
	db.InsertLabeled("R_b", "b", 1, 2, "x")
	db.InsertLabeled("R_b", "b", 1, 3, "y")
	db.AdoptIntervals(map[int]NodeInterval{
		1: {Begin: 0, End: 3, Level: 1},
		2: {Begin: 1, End: 2, Level: 2},
		3: {Begin: 2, End: 3, Level: 2},
	})
	db.DTDFP = "fp-test"
	var sb strings.Builder
	if err := db.Save(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "O 1 0 3 1\n") || !strings.Contains(sb.String(), "D fp-test\n") {
		t.Fatalf("v2 records missing:\n%s", sb.String())
	}
	got, err := Load(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasIntervals() || got.IntervalCount() != 3 || got.DTDFP != "fp-test" {
		t.Fatalf("encoding lost: has=%v count=%d fp=%q", got.HasIntervals(), got.IntervalCount(), got.DTDFP)
	}
	for id, want := range map[int]NodeInterval{1: {0, 3, 1}, 2: {1, 2, 2}, 3: {2, 3, 2}} {
		if iv, ok := got.Interval(id); !ok || iv != want {
			t.Fatalf("node %d: %+v ok=%v, want %+v", id, iv, ok, want)
		}
	}
	var sb2 strings.Builder
	if err := got.Save(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Fatalf("v2 save not deterministic:\n%s\nvs\n%s", sb.String(), sb2.String())
	}
}

// TestLoadPreIntervalImage: a v1 image — no O/D records — loads cleanly
// with no interval encoding; RebuildIntervals then computes the dense
// preorder encoding from the relations alone (the boot-time upgrade path).
func TestLoadPreIntervalImage(t *testing.T) {
	v1 := "R R_a 0 1 \"\"\nR R_b 1 2 \"x\"\nR R_b 1 3 \"y\"\n" +
		"N 1 0 \"a\" \"\"\nN 2 1 \"b\" \"x\"\nN 3 1 \"b\" \"y\"\n"
	db, err := Load(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if db.HasIntervals() || db.DTDFP != "" {
		t.Fatalf("v1 image should have no encoding: has=%v fp=%q", db.HasIntervals(), db.DTDFP)
	}
	db.RebuildIntervals()
	// Levels are 0-based at the root element, matching the shredders.
	for id, want := range map[int]NodeInterval{1: {0, 3, 0}, 2: {1, 2, 1}, 3: {2, 3, 1}} {
		if iv, ok := db.Interval(id); !ok || iv != want {
			t.Fatalf("rebuilt node %d: %+v ok=%v, want %+v", id, iv, ok, want)
		}
	}
}

// TestLoadIntervalErrors: corrupted O records are refused with their line
// number; an inverted interval is corruption too.
func TestLoadIntervalErrors(t *testing.T) {
	for _, bad := range []string{
		"O 1 2",
		"O 1 2 3",
		"O x 0 1 1",
		"O 1 a 2 1",
		"O 1 0 b 1",
		"O 1 0 2 c",
		"O 1 5 2 1", // end < begin
	} {
		if _, err := Load(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("Load(%q): expected error", bad)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("Load(%q): error %q does not name the line", bad, err)
		}
	}
}
