package rdb

import (
	"strings"
	"testing"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	db := NewDB()
	db.InsertLabeled("R_a", "a", 0, 1, "root value")
	db.InsertLabeled("R_b", "b", 1, 2, `tricky "quoted" \ value`)
	db.InsertLabeled("R_b", "b", 1, 3, "")
	db.Rel("R_empty") // declared but empty
	var sb strings.Builder
	if err := db.Save(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Load: %v\ntext:\n%s", err, sb.String())
	}
	if len(got.Rels) != len(db.Rels) {
		t.Fatalf("relations: %d vs %d", len(got.Rels), len(db.Rels))
	}
	for name, rel := range db.Rels {
		grel, ok := got.Rels[name]
		if !ok || grel.Len() != rel.Len() {
			t.Fatalf("relation %s mismatch", name)
		}
		for _, tp := range rel.Tuples() {
			if !grel.Has(tp.F, tp.T) {
				t.Fatalf("missing tuple %+v", tp)
			}
		}
	}
	if got.Vals[2] != db.Vals[2] || got.Labels[2] != "b" || got.ParentOf[3] != 1 {
		t.Fatalf("catalog mismatch: %v %v %v", got.Vals, got.Labels, got.ParentOf)
	}
	// Determinism: saving again produces identical text.
	var sb2 strings.Builder
	if err := got.Save(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Fatalf("save not deterministic:\n%s\nvs\n%s", sb.String(), sb2.String())
	}
}

func TestLoadErrors(t *testing.T) {
	for _, bad := range []string{
		"X what is this",
		"R onlyname",
		"R rel notanumber 2 \"v\"",
		"R rel 1 2 unquoted",
		"N 1",
		"N x 0 \"a\" \"v\"",
	} {
		if _, err := Load(strings.NewReader(bad)); err == nil {
			t.Errorf("Load(%q): expected error", bad)
		}
	}
}

func TestLoadEmpty(t *testing.T) {
	db, err := Load(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if db.NumNodes() != 0 {
		t.Fatalf("nodes = %d", db.NumNodes())
	}
}
