package rdb

import "sync"

// Interner dictionary-encodes strings as dense int32 symbol IDs so relations
// store three machine words per tuple instead of carrying string headers.
// Symbol 0 is always the empty string. One Interner is shared by every
// relation of a DB (stored and temporary), so joins move symbols around
// without ever touching string data; equality on V becomes an int32 compare.
//
// The interner is safe for concurrent use: the statement-level scheduler
// (RunParallel) and the morsel workers inside operators may intern and
// resolve symbols from multiple goroutines. After a database is loaded the
// working set of strings is almost always already present, so Intern is a
// read-locked lookup on the hot path.
type Interner struct {
	mu   sync.RWMutex
	ids  map[string]int32
	strs []string
}

// NewInterner returns an interner holding only the empty string (symbol 0).
func NewInterner() *Interner {
	return &Interner{ids: map[string]int32{"": 0}, strs: []string{""}}
}

// Intern returns the symbol for s, assigning a new one on first sight.
func (in *Interner) Intern(s string) int32 {
	in.mu.RLock()
	id, ok := in.ids[s]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok = in.ids[s]; ok {
		return id
	}
	id = int32(len(in.strs))
	in.ids[s] = id
	in.strs = append(in.strs, s)
	return id
}

// Lookup returns the symbol for s without assigning one. A miss means no
// stored tuple carries s, so a selection on s is empty.
func (in *Interner) Lookup(s string) (int32, bool) {
	in.mu.RLock()
	id, ok := in.ids[s]
	in.mu.RUnlock()
	return id, ok
}

// Str resolves a symbol back to its string.
func (in *Interner) Str(id int32) string {
	in.mu.RLock()
	s := in.strs[id]
	in.mu.RUnlock()
	return s
}

// Len returns the number of distinct strings interned.
func (in *Interner) Len() int {
	in.mu.RLock()
	n := len(in.strs)
	in.mu.RUnlock()
	return n
}
