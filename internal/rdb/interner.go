package rdb

import (
	"sync"
	"sync/atomic"
)

// Interner dictionary-encodes strings as dense int32 symbol IDs so relations
// store three machine words per tuple instead of carrying string headers.
// Symbol 0 is always the empty string. One Interner is shared by every
// relation of a DB (stored and temporary), so joins move symbols around
// without ever touching string data; equality on V becomes an int32 compare.
//
// The interner is safe for concurrent use and, after a database is loaded,
// lock-free on the read path: resolved symbols live in an immutable
// copy-on-write snapshot behind an atomic pointer (the same discipline as
// Relation's index pointers). New strings go into a small mutex-guarded
// dirty map that is promoted into a fresh snapshot once it has either grown
// by a constant fraction of the snapshot or absorbed enough locked lookups
// — the sync.Map promotion idea, with an insert-count trigger added so bulk
// loads amortize to O(n) total promotion work. Steady-state serving, where
// the working set of strings is already interned, touches no lock at all.
type Interner struct {
	// clean is the immutable snapshot: every symbol below len(clean.strs)
	// resolves through it without locking.
	clean atomic.Pointer[internSnap]

	mu      sync.Mutex
	dirty   map[string]int32 // strings interned since the last promotion
	strs    []string         // all strings; clean.strs is a stable prefix
	misses  int              // locked lookups that hit dirty
	inserts int              // strings added since the last promotion
}

// internSnap is one immutable snapshot of the dictionary.
type internSnap struct {
	ids  map[string]int32
	strs []string
}

// NewInterner returns an interner holding only the empty string (symbol 0).
func NewInterner() *Interner {
	in := &Interner{strs: []string{""}}
	in.clean.Store(&internSnap{ids: map[string]int32{"": 0}, strs: in.strs[:1:1]})
	return in
}

// Intern returns the symbol for s, assigning a new one on first sight.
func (in *Interner) Intern(s string) int32 {
	if id, ok := in.clean.Load().ids[s]; ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	// Re-check under the lock: a promotion may have landed s in clean.
	if id, ok := in.clean.Load().ids[s]; ok {
		return id
	}
	if id, ok := in.dirty[s]; ok {
		in.missLocked()
		return id
	}
	id := int32(len(in.strs))
	in.strs = append(in.strs, s)
	if in.dirty == nil {
		in.dirty = map[string]int32{}
	}
	in.dirty[s] = id
	in.inserts++
	if in.inserts >= len(in.clean.Load().ids)/4+16 {
		in.promoteLocked()
	}
	return id
}

// missLocked counts a locked lookup that had to fall through to the dirty
// map and promotes once enough of them accumulate, so a burst of new
// strings followed by a read-heavy phase self-heals to lock-free.
func (in *Interner) missLocked() {
	in.misses++
	if in.misses >= 64 {
		in.promoteLocked()
	}
}

// promoteLocked publishes a fresh immutable snapshot covering every interned
// string. Callers hold mu.
func (in *Interner) promoteLocked() {
	old := in.clean.Load()
	ids := make(map[string]int32, len(old.ids)+len(in.dirty))
	for s, id := range old.ids {
		ids[s] = id
	}
	for s, id := range in.dirty {
		ids[s] = id
	}
	in.clean.Store(&internSnap{ids: ids, strs: in.strs[:len(in.strs):len(in.strs)]})
	in.dirty = nil
	in.misses = 0
	in.inserts = 0
}

// Lookup returns the symbol for s without assigning one. A miss means no
// stored tuple carries s, so a selection on s is empty.
func (in *Interner) Lookup(s string) (int32, bool) {
	if id, ok := in.clean.Load().ids[s]; ok {
		return id, true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.clean.Load().ids[s]; ok {
		return id, true
	}
	id, ok := in.dirty[s]
	if ok {
		in.missLocked()
	}
	return id, ok
}

// Str resolves a symbol back to its string.
func (in *Interner) Str(id int32) string {
	if snap := in.clean.Load(); int(id) < len(snap.strs) {
		return snap.strs[id]
	}
	in.mu.Lock()
	s := in.strs[id]
	in.mu.Unlock()
	return s
}

// Len returns the number of distinct strings interned.
func (in *Interner) Len() int {
	in.mu.Lock()
	n := len(in.strs)
	in.mu.Unlock()
	return n
}
