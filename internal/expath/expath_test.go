package expath

import (
	"testing"

	"xpath2sql/internal/xmltree"
)

func lbl(s string) Expr  { return Label{Name: s} }
func cat(l, r Expr) Expr { return Cat{L: l, R: r} }
func uni(l, r Expr) Expr { return Union{L: l, R: r} }
func star(e Expr) Expr   { return Star{E: e} }
func v(s string) Expr    { return Var{Name: s} }

func TestSmartConstructors(t *testing.T) {
	if _, ok := MkUnion(Zero{}, lbl("a")).(Label); !ok {
		t.Errorf("∅ ∪ a should be a")
	}
	if _, ok := MkUnion(lbl("a"), Zero{}).(Label); !ok {
		t.Errorf("a ∪ ∅ should be a")
	}
	if got := MkUnion(lbl("a"), lbl("a")).String(); got != "a" {
		t.Errorf("a ∪ a = %s", got)
	}
	if _, ok := MkCat(Zero{}, lbl("a")).(Zero); !ok {
		t.Errorf("∅/a should be ∅")
	}
	if _, ok := MkCat(lbl("a"), Zero{}).(Zero); !ok {
		t.Errorf("a/∅ should be ∅")
	}
	if got := MkCat(Eps{}, lbl("a")).String(); got != "a" {
		t.Errorf("ε/a = %s", got)
	}
	if got := MkCat(lbl("a"), Eps{}).String(); got != "a" {
		t.Errorf("a/ε = %s", got)
	}
	if _, ok := MkStar(Zero{}).(Eps); !ok {
		t.Errorf("∅* should be ε")
	}
	if _, ok := MkStar(Eps{}).(Eps); !ok {
		t.Errorf("ε* should be ε")
	}
	if got := MkStar(star(lbl("a"))).String(); got != "a*" {
		t.Errorf("(a*)* = %s", got)
	}
	if _, ok := MkQual(lbl("a"), QTrue{}).(Label); !ok {
		t.Errorf("a[⊤] should be a")
	}
	if _, ok := MkQual(lbl("a"), QFalse{}).(Zero); !ok {
		t.Errorf("a[⊥] should be ∅")
	}
	if _, ok := MkNot(QTrue{}).(QFalse); !ok {
		t.Errorf("¬⊤ should be ⊥")
	}
	if _, ok := MkNot(QNot{Q: QText{C: "x"}}).(QText); !ok {
		t.Errorf("¬¬q should be q")
	}
	if _, ok := MkAnd(QFalse{}, QText{C: "x"}).(QFalse); !ok {
		t.Errorf("⊥ ∧ q should be ⊥")
	}
	if _, ok := MkAnd(QTrue{}, QText{C: "x"}).(QText); !ok {
		t.Errorf("⊤ ∧ q should be q")
	}
	if _, ok := MkOr(QTrue{}, QText{C: "x"}).(QTrue); !ok {
		t.Errorf("⊤ ∨ q should be ⊤")
	}
	if _, ok := MkOr(QFalse{}, QText{C: "x"}).(QText); !ok {
		t.Errorf("⊥ ∨ q should be q")
	}
}

func TestPrinterPrecedence(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{cat(lbl("a"), lbl("b")), "a/b"},
		{cat(uni(lbl("a"), lbl("b")), lbl("c")), "(a ∪ b)/c"},
		{star(lbl("a")), "a*"},
		{star(cat(lbl("a"), lbl("b"))), "(a/b)*"},
		{star(uni(lbl("a"), lbl("b"))), "(a ∪ b)*"},
		{cat(lbl("a"), star(lbl("b"))), "a/b*"},
		{Qualified{E: lbl("a"), Q: QText{C: "x"}}, `a[text()="x"]`},
		{star(Qualified{E: lbl("a"), Q: QExpr{E: lbl("b")}}), "(a[b])*"},
	}
	for _, tc := range cases {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

func TestQueryValidate(t *testing.T) {
	good := &Query{
		Eqs: []Equation{
			{X: "X1", E: lbl("a")},
			{X: "X2", E: cat(v("X1"), lbl("b"))},
		},
		Result: v("X2"),
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	forward := &Query{
		Eqs: []Equation{
			{X: "X1", E: v("X2")},
			{X: "X2", E: lbl("a")},
		},
		Result: v("X1"),
	}
	if err := forward.Validate(); err == nil {
		t.Fatalf("forward reference accepted")
	}
	dup := &Query{
		Eqs:    []Equation{{X: "X1", E: lbl("a")}, {X: "X1", E: lbl("b")}},
		Result: v("X1"),
	}
	if err := dup.Validate(); err == nil {
		t.Fatalf("duplicate binding accepted")
	}
	unbound := &Query{Result: v("X9")}
	if err := unbound.Validate(); err == nil {
		t.Fatalf("unbound result accepted")
	}
}

func evalAtRoot(t *testing.T, q *Query, src string) []int {
	t.Helper()
	doc, err := xmltree.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := EvalQuery(q, doc)
	if err != nil {
		t.Fatal(err)
	}
	set := ResultAtRoot(rel, doc)
	var out []int
	for _, id := range set.IDs() {
		out = append(out, int(id))
	}
	return out
}

func eqInts(a []int, b ...int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEvalSimple(t *testing.T) {
	// <a><b><c/></b><b/></a>: IDs a=1 b=2 c=3 b=4
	q := &Query{Result: cat(lbl("a"), lbl("b"))}
	if got := evalAtRoot(t, q, `<a><b><c/></b><b/></a>`); !eqInts(got, 2, 4) {
		t.Fatalf("a/b = %v", got)
	}
}

func TestEvalStar(t *testing.T) {
	// Linear chain a/a/a: (a)* from virtual root reaches all of them plus ε.
	q := &Query{Result: cat(lbl("a"), star(lbl("a")))}
	if got := evalAtRoot(t, q, `<a><a><a/></a></a>`); !eqInts(got, 1, 2, 3) {
		t.Fatalf("a/a* = %v", got)
	}
}

func TestEvalVariables(t *testing.T) {
	// X = b ∪ c; result = a/X over <a><b/><c/><d/></a>.
	q := &Query{
		Eqs:    []Equation{{X: "X", E: uni(lbl("b"), lbl("c"))}},
		Result: cat(lbl("a"), v("X")),
	}
	if got := evalAtRoot(t, q, `<a><b/><c/><d/></a>`); !eqInts(got, 2, 3) {
		t.Fatalf("a/(b∪c) = %v", got)
	}
}

func TestEvalQualifiers(t *testing.T) {
	// a/b[c]: b children of a that have a c child.
	q := &Query{Result: cat(lbl("a"), Qualified{E: lbl("b"), Q: QExpr{E: lbl("c")}})}
	if got := evalAtRoot(t, q, `<a><b><c/></b><b/></a>`); !eqInts(got, 2) {
		t.Fatalf("a/b[c] = %v", got)
	}
	// a/b[¬c].
	q = &Query{Result: cat(lbl("a"), Qualified{E: lbl("b"), Q: QNot{Q: QExpr{E: lbl("c")}}})}
	if got := evalAtRoot(t, q, `<a><b><c/></b><b/></a>`); !eqInts(got, 4) {
		t.Fatalf("a/b[¬c] = %v", got)
	}
	// a/b[text()='x'].
	q = &Query{Result: cat(lbl("a"), Qualified{E: lbl("b"), Q: QText{C: "x"}})}
	if got := evalAtRoot(t, q, `<a><b>x</b><b>y</b></a>`); !eqInts(got, 2) {
		t.Fatalf("a/b[text()=x] = %v", got)
	}
}

func TestEvalExprRejectsVariables(t *testing.T) {
	doc, _ := xmltree.Parse(`<a/>`)
	if _, err := EvalExpr(v("X"), doc); err == nil {
		t.Fatalf("unbound variable accepted")
	}
}

func TestPrune(t *testing.T) {
	q := &Query{
		Eqs: []Equation{
			{X: "Dead", E: cat(lbl("x"), lbl("y"))}, // unused
			{X: "Z", E: Zero{}},                     // ∅ binding
			{X: "A", E: lbl("a")},                   // trivial
			{X: "U", E: uni(v("A"), v("Z"))},        // collapses to a (Var)
			{X: "B", E: cat(v("U"), lbl("b"))},      // a/b
		},
		Result: v("B"),
	}
	p := q.Prune()
	if err := p.Validate(); err != nil {
		t.Fatalf("pruned invalid: %v", err)
	}
	for _, eq := range p.Eqs {
		switch eq.X {
		case "Dead", "Z", "A", "U":
			t.Errorf("equation %s should have been pruned", eq.X)
		}
	}
	got := evalAtRoot(t, p, `<a><b/></a>`)
	if !eqInts(got, 2) {
		t.Fatalf("pruned query result = %v", got)
	}
}

func TestPruneEquivalence(t *testing.T) {
	// Prune must preserve semantics on a query with rich structure.
	q := &Query{
		Eqs: []Equation{
			{X: "E1", E: lbl("b")},
			{X: "E2", E: uni(v("E1"), Zero{})},
			{X: "E3", E: star(v("E2"))},
			{X: "E4", E: cat(lbl("a"), v("E3"))},
		},
		Result: v("E4"),
	}
	src := `<a><b><b/></b></a>`
	want := evalAtRoot(t, q, src)
	got := evalAtRoot(t, q.Prune(), src)
	if !eqInts(got, want...) {
		t.Fatalf("prune changed result: %v vs %v", got, want)
	}
}

func TestInline(t *testing.T) {
	q := &Query{
		Eqs: []Equation{
			{X: "X", E: uni(lbl("b"), lbl("c"))},
			{X: "Y", E: cat(lbl("a"), v("X"))},
		},
		Result: v("Y"),
	}
	inlined := q.Inline()
	if len(FreeVars(inlined)) != 0 {
		t.Fatalf("Inline left variables: %s", inlined)
	}
	src := `<a><b/><c/><d/></a>`
	want := evalAtRoot(t, q, src)
	got := evalAtRoot(t, &Query{Result: inlined}, src)
	if !eqInts(got, want...) {
		t.Fatalf("inline changed result: %v vs %v", got, want)
	}
}

func TestCountOps(t *testing.T) {
	q := &Query{
		Eqs: []Equation{
			{X: "X", E: uni(lbl("b"), cat(lbl("c"), lbl("d")))}, // 1 union, 1 cat
			{X: "Dead", E: star(lbl("z"))},                      // unreachable: not counted
		},
		Result: cat(lbl("a"), star(v("X"))), // 1 cat, 1 star
	}
	c := q.CountOps()
	if c.Star != 1 || c.Cat != 2 || c.Union != 1 {
		t.Fatalf("CountOps = %+v", c)
	}
	if c.All() != 4 {
		t.Fatalf("All = %d", c.All())
	}
}

func TestFreeVars(t *testing.T) {
	e := cat(v("B"), Qualified{E: star(v("A")), Q: QAnd{L: QExpr{E: v("C")}, R: QText{C: "x"}}})
	vs := FreeVars(e)
	if len(vs) != 3 || vs[0] != "A" || vs[1] != "B" || vs[2] != "C" {
		t.Fatalf("FreeVars = %v", vs)
	}
}
