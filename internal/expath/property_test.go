package expath

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xpath2sql/internal/xmltree"
)

// randomExpr builds a random variable-free extended-XPath expression over
// the given labels.
func randomExpr(r *rand.Rand, labels []string, depth int) Expr {
	pick := func() string { return labels[r.Intn(len(labels))] }
	if depth == 0 {
		switch r.Intn(4) {
		case 0:
			return Eps{}
		case 1:
			return Edge{From: pick(), To: pick()}
		default:
			return Label{Name: pick()}
		}
	}
	switch r.Intn(6) {
	case 0:
		return Label{Name: pick()}
	case 1:
		return Cat{L: randomExpr(r, labels, depth-1), R: randomExpr(r, labels, depth-1)}
	case 2:
		return Union{L: randomExpr(r, labels, depth-1), R: randomExpr(r, labels, depth-1)}
	case 3:
		return Star{E: randomExpr(r, labels, depth-1)}
	case 4:
		return Qualified{E: randomExpr(r, labels, depth-1), Q: QExpr{E: randomExpr(r, labels, depth-1)}}
	default:
		return Eps{}
	}
}

// randomDoc builds a small random tree over the labels.
func randomDoc(r *rand.Rand, labels []string) *xmltree.Document {
	root := &xmltree.Node{Label: labels[0]}
	nodes := []*xmltree.Node{root}
	for i := 0; i < 12; i++ {
		parent := nodes[r.Intn(len(nodes))]
		c := parent.AddChild(labels[r.Intn(len(labels))])
		nodes = append(nodes, c)
	}
	return xmltree.NewDocument(root)
}

var propLabels = []string{"a", "b", "c"}

func relEqual(x, y Rel) bool {
	if x.Size() != y.Size() {
		return false
	}
	for f, ts := range x {
		for t := range ts {
			if !y.Has(f, t) {
				return false
			}
		}
	}
	return true
}

// TestSmartConstructorsPreserveSemantics: MkCat/MkUnion/MkStar/MkQual agree
// with the plain constructors on random expressions and documents.
func TestSmartConstructorsPreserveSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDoc(r, propLabels)
		a := randomExpr(r, propLabels, 2)
		b := randomExpr(r, propLabels, 2)
		pairs := []struct{ plain, smart Expr }{
			{Cat{L: a, R: b}, MkCat(a, b)},
			{Union{L: a, R: b}, MkUnion(a, b)},
			{Star{E: a}, MkStar(a)},
			{Cat{L: Eps{}, R: a}, MkCat(Eps{}, a)},
			{Union{L: Zero{}, R: a}, MkUnion(Zero{}, a)},
			{Cat{L: a, R: Zero{}}, MkCat(a, Zero{})},
		}
		for _, p := range pairs {
			x, err := EvalExpr(p.plain, doc)
			if err != nil {
				return false
			}
			y, err := EvalExpr(p.smart, doc)
			if err != nil {
				return false
			}
			if !relEqual(x, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestStarLaws: (E*)* ≡ E*, and E* ≡ ε ∪ E/E*.
func TestStarLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDoc(r, propLabels)
		e := randomExpr(r, propLabels, 2)
		star := Star{E: e}
		x, err := EvalExpr(Star{E: star}, doc)
		if err != nil {
			return false
		}
		y, err := EvalExpr(star, doc)
		if err != nil {
			return false
		}
		if !relEqual(x, y) {
			return false
		}
		unrolled := Union{L: Eps{}, R: Cat{L: e, R: star}}
		z, err := EvalExpr(unrolled, doc)
		if err != nil {
			return false
		}
		return relEqual(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeEqualsTypedLabel: ⟨u→v⟩ ≡ restricting a v step to u-labeled
// sources.
func TestEdgeEqualsTypedLabel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDoc(r, propLabels)
		u := propLabels[r.Intn(len(propLabels))]
		v := propLabels[r.Intn(len(propLabels))]
		got, err := EvalExpr(Edge{From: u, To: v}, doc)
		if err != nil {
			return false
		}
		full, err := EvalExpr(Label{Name: v}, doc)
		if err != nil {
			return false
		}
		want := Rel{}
		for f0, ts := range full {
			src := doc.Node(f0)
			if src == nil || src.Label != u {
				continue
			}
			for t0 := range ts {
				want.Add(f0, t0)
			}
		}
		return relEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPruneIdempotent: pruning twice equals pruning once.
func TestPruneIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e1 := randomExpr(r, propLabels, 2)
		e2 := randomExpr(r, propLabels, 2)
		q := &Query{
			Eqs: []Equation{
				{X: "X1", E: e1},
				{X: "X2", E: MkUnion(Var{Name: "X1"}, e2)},
			},
			Result: Var{Name: "X2"},
		}
		p1 := q.Prune()
		p2 := p1.Prune()
		return p1.String() == p2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
