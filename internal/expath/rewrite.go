package expath

// This file implements the query clean-up passes of CycleEX line 15 and
// EXpToSQL line 27: pruning redundant equations and (for testing and for the
// CycleE comparison) full variable elimination.

// Prune returns an equivalent query with
//  1. equations X = ∅ removed (occurrences replaced by ∅ and re-simplified),
//  2. alias equations X = Y and trivial bindings (X = ε, X = A) inlined, and
//  3. equations not contributing to the result expression dropped.
//
// These are exactly the three pruning rules of Fig 7, line 15.
func (q *Query) Prune() *Query {
	// Iterate until fixpoint: substituting ∅ can create new ∅/alias
	// equations.
	eqs := make([]Equation, len(q.Eqs))
	copy(eqs, q.Eqs)
	result := q.Result
	for {
		// Collect substitutions: var -> replacement expression.
		subst := map[string]Expr{}
		for _, eq := range eqs {
			switch e := eq.E.(type) {
			case Zero, Eps, Label, Edge, Var:
				subst[eq.X] = e
			}
		}
		if len(subst) == 0 {
			break
		}
		// Chase alias chains (X = Y where Y itself is substituted).
		for x := range subst {
			seen := map[string]bool{x: true}
			for {
				v, ok := subst[x].(Var)
				if !ok {
					break
				}
				next, ok2 := subst[v.Name]
				if !ok2 || seen[v.Name] {
					break
				}
				seen[v.Name] = true
				subst[x] = next
			}
		}
		var kept []Equation
		for _, eq := range eqs {
			if _, drop := subst[eq.X]; drop {
				continue
			}
			kept = append(kept, Equation{X: eq.X, E: Substitute(eq.E, subst)})
		}
		result = Substitute(result, subst)
		if len(kept) == len(eqs) {
			eqs = kept
			break
		}
		eqs = kept
	}
	// Rule 3: keep only equations reachable from the result.
	needed := map[string]bool{}
	for _, v := range FreeVars(result) {
		needed[v] = true
	}
	for i := len(eqs) - 1; i >= 0; i-- {
		if needed[eqs[i].X] {
			for _, v := range FreeVars(eqs[i].E) {
				needed[v] = true
			}
		}
	}
	var kept []Equation
	for _, eq := range eqs {
		if needed[eq.X] {
			kept = append(kept, eq)
		}
	}
	return &Query{Eqs: kept, Result: result}
}

// Substitute replaces variable occurrences per subst, re-simplifying with
// the smart constructors so introduced ∅/ε collapse.
func Substitute(e Expr, subst map[string]Expr) Expr {
	switch e := e.(type) {
	case Var:
		if r, ok := subst[e.Name]; ok {
			return r
		}
		return e
	case Cat:
		return MkCat(Substitute(e.L, subst), Substitute(e.R, subst))
	case Union:
		return MkUnion(Substitute(e.L, subst), Substitute(e.R, subst))
	case Star:
		return MkStar(Substitute(e.E, subst))
	case Qualified:
		return MkQual(Substitute(e.E, subst), substQual(e.Q, subst))
	case DescSelf:
		alt := Substitute(e.Alt, subst)
		if _, zero := alt.(Zero); zero {
			// DescSelf denotes exactly its alternative; ∅ stays ∅.
			return Zero{}
		}
		return DescSelf{From: e.From, To: e.To, Alt: alt}
	default:
		return e
	}
}

func substQual(q Qual, subst map[string]Expr) Qual {
	switch q := q.(type) {
	case QExpr:
		inner := Substitute(q.E, subst)
		if _, ok := inner.(Zero); ok {
			return QFalse{}
		}
		return QExpr{E: inner}
	case QNot:
		return MkNot(substQual(q.Q, subst))
	case QAnd:
		return MkAnd(substQual(q.L, subst), substQual(q.R, subst))
	case QOr:
		return MkOr(substQual(q.L, subst), substQual(q.R, subst))
	default:
		return q
	}
}

// Inline eliminates every variable, producing a single regular-XPath
// expression (no variables) equivalent to the query. This is the expansion
// the paper proves may be exponentially larger than the equation form; it is
// used by tests and by the CycleE comparison, never on user-facing paths.
func (q *Query) Inline() Expr {
	subst := map[string]Expr{}
	for _, eq := range q.Eqs {
		subst[eq.X] = Substitute(eq.E, subst)
	}
	return Substitute(q.Result, subst)
}
