// Package expath implements extended XPath expressions (Fan et al. §3.2):
//
//	E ::= ε | A | X | E/E | E ∪ E | E* | E[q]
//	q ::= E | text() = c | ¬q | q ∧ q | q ∨ q
//
// where X ranges over variables and E* is general Kleene closure. An
// extended XPath query is a sequence of equations X_i = E_i binding
// variables to expressions; variables give possibly-infinite path sets a
// polynomial-size representation (the key to CycleEX's complexity bound).
//
// Semantics are binary-relational: an expression denotes the set of
// (context, target) node pairs it connects in an XML tree. This aligns the
// tree evaluator with the relational translation, whose intermediate tables
// carry exactly (F, T) node-ID pairs.
package expath

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a node of the extended-XPath AST.
type Expr interface {
	String() string
	isExpr()
}

// Zero is the special query ∅ returning the empty set over all trees; it is
// the identity of ∪ and annihilates / (§2.2). It never survives into final
// output — the translators prune it — but is pervasive mid-construction.
type Zero struct{}

// Eps is the empty path ε.
type Eps struct{}

// Label is a child step to elements labeled Name.
type Label struct{ Name string }

// Edge is a source-typed child step: from a From-labeled element to a
// To-labeled child. It is the expression form of the typed edge joins of
// Example 3.5 (Rs/Rc ≡ Edge{student, course}): unlike a bare Label step it
// stays within the DTD's edge set even when evaluated over documents of a
// larger, containing DTD, which the flat per-component closures require
// (§3.2 and the view semantics of §3.4).
type Edge struct{ From, To string }

// Var references the equation binding X.
type Var struct{ Name string }

// Cat is concatenation E1/E2.
type Cat struct{ L, R Expr }

// Union is E1 ∪ E2.
type Union struct{ L, R Expr }

// Star is Kleene closure E* (zero or more).
type Star struct{ E Expr }

// Qualified is E[q].
type Qualified struct {
	E Expr
	Q Qual
}

// DescSelf annotates the non-ε part of a recursive descendant closure
// rec(From, To) with its physical alternative: the expression denotes
// exactly what Alt denotes (DescSelf is semantically transparent — every
// evaluator answers it by evaluating Alt), but the relational translation
// may replace the equation plan with a document-order interval containment
// scan from From-typed to To-typed nodes when the stored database carries a
// matching interval encoding. Introduced by the XPath→extended-XPath
// rewriting around every // step's rec() expression.
type DescSelf struct {
	From, To string
	Alt      Expr
}

func (Zero) isExpr()      {}
func (Eps) isExpr()       {}
func (Label) isExpr()     {}
func (Edge) isExpr()      {}
func (Var) isExpr()       {}
func (Cat) isExpr()       {}
func (Union) isExpr()     {}
func (Star) isExpr()      {}
func (Qualified) isExpr() {}
func (DescSelf) isExpr()  {}

func (Zero) String() string    { return "∅" }
func (Eps) String() string     { return "ε" }
func (l Label) String() string { return l.Name }
func (e Edge) String() string  { return "⟨" + e.From + "→" + e.To + "⟩" }
func (v Var) String() string   { return v.Name }

func (c Cat) String() string {
	return paren(c.L, 1) + "/" + paren(c.R, 1)
}

func (u Union) String() string {
	return u.L.String() + " ∪ " + u.R.String()
}

func (s Star) String() string { return paren(s.E, 2) + "*" }

func (q Qualified) String() string {
	return paren(q.E, 1) + "[" + q.Q.String() + "]"
}

func (d DescSelf) String() string {
	return "desc⟨" + d.From + "↝" + d.To + "⟩(" + d.Alt.String() + ")"
}

// paren parenthesizes operands whose precedence is below the context level:
// level 1 = operand of '/', level 2 = operand of '*'.
func paren(e Expr, level int) string {
	switch e.(type) {
	case Union:
		return "(" + e.String() + ")"
	case Cat:
		if level >= 2 {
			return "(" + e.String() + ")"
		}
	case Qualified:
		if level >= 2 {
			return "(" + e.String() + ")"
		}
	}
	return e.String()
}

// Qual is a qualifier over extended expressions.
type Qual interface {
	String() string
	isQual()
}

// QTrue is the trivially-true qualifier (RewQual's ⊤, printed ε): a
// qualifier statically decided by the DTD structure.
type QTrue struct{}

// QFalse is the trivially-false qualifier (RewQual's ∅).
type QFalse struct{}

// QExpr is an existence test [E].
type QExpr struct{ E Expr }

// QText is [text() = c].
type QText struct{ C string }

// QNot is [¬q].
type QNot struct{ Q Qual }

// QAnd is [q1 ∧ q2].
type QAnd struct{ L, R Qual }

// QOr is [q1 ∨ q2].
type QOr struct{ L, R Qual }

func (QTrue) isQual()  {}
func (QFalse) isQual() {}
func (QExpr) isQual()  {}
func (QText) isQual()  {}
func (QNot) isQual()   {}
func (QAnd) isQual()   {}
func (QOr) isQual()    {}

func (QTrue) String() string   { return "ε" }
func (QFalse) String() string  { return "∅" }
func (q QExpr) String() string { return q.E.String() }
func (q QText) String() string { return fmt.Sprintf("text()=%q", q.C) }
func (q QNot) String() string  { return "¬(" + q.Q.String() + ")" }
func (q QAnd) String() string  { return "(" + q.L.String() + " ∧ " + q.R.String() + ")" }
func (q QOr) String() string   { return "(" + q.L.String() + " ∨ " + q.R.String() + ")" }

// Equation binds a variable to an expression.
type Equation struct {
	X string
	E Expr
}

// Query is an extended XPath query: equations in dependency order (an
// equation's expression references only variables bound by earlier
// equations) and a result expression.
type Query struct {
	Eqs    []Equation
	Result Expr
}

func (q *Query) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "result = %s\n", q.Result.String())
	for i := len(q.Eqs) - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "%s = %s\n", q.Eqs[i].X, q.Eqs[i].E.String())
	}
	return b.String()
}

// Lookup returns the expression bound to variable x, or nil.
func (q *Query) Lookup(x string) Expr {
	for i := range q.Eqs {
		if q.Eqs[i].X == x {
			return q.Eqs[i].E
		}
	}
	return nil
}

// FreeVars returns the variables referenced by e, sorted.
func FreeVars(e Expr) []string {
	set := map[string]bool{}
	collectVars(e, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectVars(e Expr, set map[string]bool) {
	switch e := e.(type) {
	case Var:
		set[e.Name] = true
	case Cat:
		collectVars(e.L, set)
		collectVars(e.R, set)
	case Union:
		collectVars(e.L, set)
		collectVars(e.R, set)
	case Star:
		collectVars(e.E, set)
	case Qualified:
		collectVars(e.E, set)
		collectQualVars(e.Q, set)
	case DescSelf:
		collectVars(e.Alt, set)
	}
}

func collectQualVars(q Qual, set map[string]bool) {
	switch q := q.(type) {
	case QExpr:
		collectVars(q.E, set)
	case QNot:
		collectQualVars(q.Q, set)
	case QAnd:
		collectQualVars(q.L, set)
		collectQualVars(q.R, set)
	case QOr:
		collectQualVars(q.L, set)
		collectQualVars(q.R, set)
	}
}

// Validate checks the dependency ordering invariant of the query and that
// every referenced variable is bound.
func (q *Query) Validate() error {
	bound := map[string]bool{}
	for i, eq := range q.Eqs {
		for _, v := range FreeVars(eq.E) {
			if !bound[v] {
				return fmt.Errorf("expath: equation %d (%s) references unbound variable %s", i, eq.X, v)
			}
		}
		if bound[eq.X] {
			return fmt.Errorf("expath: variable %s bound twice", eq.X)
		}
		bound[eq.X] = true
	}
	for _, v := range FreeVars(q.Result) {
		if !bound[v] {
			return fmt.Errorf("expath: result references unbound variable %s", v)
		}
	}
	return nil
}

// OpCounts are the operator statistics reported in Table 5 of the paper.
type OpCounts struct {
	Star  int // LFP column: Kleene closures
	Cat   int // '/' operators
	Union int // '∪' operators
}

// All returns the ALL column: every operator.
func (c OpCounts) All() int { return c.Star + c.Cat + c.Union }

// CountOps counts operators over the result expression and every equation
// transitively reachable from it. Variable references are counted once per
// occurrence (they are not expanded), matching CycleEX's accounting.
func (q *Query) CountOps() OpCounts {
	var c OpCounts
	needed := map[string]bool{}
	mark := func(e Expr) {
		for _, v := range FreeVars(e) {
			needed[v] = true
		}
	}
	mark(q.Result)
	for i := len(q.Eqs) - 1; i >= 0; i-- {
		if needed[q.Eqs[i].X] {
			mark(q.Eqs[i].E)
		}
	}
	var count func(e Expr)
	var countQ func(qq Qual)
	count = func(e Expr) {
		switch e := e.(type) {
		case Cat:
			c.Cat++
			count(e.L)
			count(e.R)
		case Union:
			c.Union++
			count(e.L)
			count(e.R)
		case Star:
			c.Star++
			count(e.E)
		case Qualified:
			count(e.E)
			countQ(e.Q)
		case DescSelf:
			// An execution annotation, not an operator: count what the
			// annotated alternative costs.
			count(e.Alt)
		}
	}
	countQ = func(qq Qual) {
		switch qq := qq.(type) {
		case QExpr:
			count(qq.E)
		case QNot:
			countQ(qq.Q)
		case QAnd:
			countQ(qq.L)
			countQ(qq.R)
		case QOr:
			countQ(qq.L)
			countQ(qq.R)
		}
	}
	count(q.Result)
	for i := range q.Eqs {
		if needed[q.Eqs[i].X] {
			count(q.Eqs[i].E)
		}
	}
	return c
}

// --- Smart constructors with the ∅/ε algebra of §2.2 ---

// MkUnion builds L ∪ R simplifying ∅ ∪ p = p and deduplicating identical
// operands.
func MkUnion(l, r Expr) Expr {
	if _, ok := l.(Zero); ok {
		return r
	}
	if _, ok := r.(Zero); ok {
		return l
	}
	if l.String() == r.String() {
		return l
	}
	return Union{L: l, R: r}
}

// MkCat builds L/R simplifying p/∅ = ∅/p = ∅ and ε/p = p/ε = p.
func MkCat(l, r Expr) Expr {
	if _, ok := l.(Zero); ok {
		return Zero{}
	}
	if _, ok := r.(Zero); ok {
		return Zero{}
	}
	if _, ok := l.(Eps); ok {
		return r
	}
	if _, ok := r.(Eps); ok {
		return l
	}
	return Cat{L: l, R: r}
}

// MkStar builds E* simplifying ∅* = ε* = ε and (E*)* = E*.
func MkStar(e Expr) Expr {
	switch e.(type) {
	case Zero, Eps:
		return Eps{}
	case Star:
		return e
	}
	return Star{E: e}
}

// MkUnionAll folds MkUnion over a list (∅ for the empty list).
func MkUnionAll(items []Expr) Expr {
	var out Expr = Zero{}
	for _, it := range items {
		out = MkUnion(out, it)
	}
	return out
}

// MkQual builds E[q], simplifying statically-decided qualifiers:
// E[⊤] = E and E[⊥] = ∅ (XPathToEXp case 7).
func MkQual(e Expr, q Qual) Expr {
	if _, ok := e.(Zero); ok {
		return Zero{}
	}
	switch q.(type) {
	case QTrue:
		return e
	case QFalse:
		return Zero{}
	}
	return Qualified{E: e, Q: q}
}

// MkNot simplifies ¬⊤ = ⊥ and ¬⊥ = ⊤ (procedure optimize, Fig 9).
func MkNot(q Qual) Qual {
	switch q := q.(type) {
	case QTrue:
		return QFalse{}
	case QFalse:
		return QTrue{}
	case QNot:
		return q.Q
	}
	return QNot{Q: q}
}

// MkAnd simplifies conjunction with static truth values.
func MkAnd(l, r Qual) Qual {
	if _, ok := l.(QFalse); ok {
		return QFalse{}
	}
	if _, ok := r.(QFalse); ok {
		return QFalse{}
	}
	if _, ok := l.(QTrue); ok {
		return r
	}
	if _, ok := r.(QTrue); ok {
		return l
	}
	return QAnd{L: l, R: r}
}

// MkOr simplifies disjunction with static truth values.
func MkOr(l, r Qual) Qual {
	if _, ok := l.(QTrue); ok {
		return QTrue{}
	}
	if _, ok := r.(QTrue); ok {
		return QTrue{}
	}
	if _, ok := l.(QFalse); ok {
		return r
	}
	if _, ok := r.(QFalse); ok {
		return l
	}
	return QOr{L: l, R: r}
}
