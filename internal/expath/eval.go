package expath

import (
	"fmt"

	"xpath2sql/internal/xmltree"
)

// Rel is a binary relation over node IDs: from -> set of to.
type Rel map[xmltree.NodeID]map[xmltree.NodeID]bool

// Add inserts the pair (f, t).
func (r Rel) Add(f, t xmltree.NodeID) {
	m, ok := r[f]
	if !ok {
		m = map[xmltree.NodeID]bool{}
		r[f] = m
	}
	m[t] = true
}

// Has reports whether the pair (f, t) is in the relation.
func (r Rel) Has(f, t xmltree.NodeID) bool { return r[f][t] }

// Size returns the number of pairs.
func (r Rel) Size() int {
	n := 0
	for _, m := range r {
		n += len(m)
	}
	return n
}

// evaluator carries the document context for expression evaluation.
type evaluator struct {
	doc   *xmltree.Document
	env   map[string]Rel
	cache map[string]Rel // memoized expression results, keyed by printed form
	// allIDs is every node ID including the virtual root 0; ε and E* are
	// reflexive over this set.
	allIDs []xmltree.NodeID
}

// EvalQuery evaluates an extended XPath query over a document and returns
// the relation of its result expression. Pair (0, t) means t is reachable
// from the virtual document root.
func EvalQuery(q *Query, doc *xmltree.Document) (Rel, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	ev := newEvaluator(doc)
	for _, eq := range q.Eqs {
		ev.env[eq.X] = ev.eval(eq.E)
	}
	return ev.eval(q.Result), nil
}

// EvalExpr evaluates a variable-free expression over a document.
func EvalExpr(e Expr, doc *xmltree.Document) (Rel, error) {
	if vs := FreeVars(e); len(vs) > 0 {
		return nil, fmt.Errorf("expath: expression has unbound variables %v", vs)
	}
	return newEvaluator(doc).eval(e), nil
}

// ResultAtRoot returns the targets reachable from the virtual document root
// in rel, as a node set of the document.
func ResultAtRoot(rel Rel, doc *xmltree.Document) xmltree.NodeSet {
	out := xmltree.NodeSet{}
	for t := range rel[xmltree.VirtualRoot] {
		if n := doc.Node(t); n != nil {
			out.Add(n)
		}
	}
	return out
}

// ResultAt returns the targets reachable from node v in rel.
func ResultAt(rel Rel, doc *xmltree.Document, v xmltree.NodeID) xmltree.NodeSet {
	out := xmltree.NodeSet{}
	for t := range rel[v] {
		if n := doc.Node(t); n != nil {
			out.Add(n)
		}
	}
	return out
}

func newEvaluator(doc *xmltree.Document) *evaluator {
	ev := &evaluator{doc: doc, env: map[string]Rel{}, cache: map[string]Rel{}}
	ev.allIDs = append(ev.allIDs, xmltree.VirtualRoot)
	for _, n := range doc.Nodes() {
		ev.allIDs = append(ev.allIDs, n.ID)
	}
	return ev
}

func (ev *evaluator) eval(e Expr) Rel {
	key := e.String()
	if r, ok := ev.cache[key]; ok {
		return r
	}
	r := ev.evalUncached(e)
	ev.cache[key] = r
	return r
}

func (ev *evaluator) evalUncached(e Expr) Rel {
	out := Rel{}
	switch e := e.(type) {
	case Zero:
		// empty
	case Eps:
		for _, id := range ev.allIDs {
			out.Add(id, id)
		}
	case Label:
		// Children labeled e.Name of every node, plus the root element as
		// child of the virtual root.
		if ev.doc.Root != nil && ev.doc.Root.Label == e.Name {
			out.Add(xmltree.VirtualRoot, ev.doc.Root.ID)
		}
		for _, n := range ev.doc.Nodes() {
			for _, c := range n.Children {
				if c.Label == e.Name {
					out.Add(n.ID, c.ID)
				}
			}
		}
	case Edge:
		for _, n := range ev.doc.Nodes() {
			if n.Label != e.From {
				continue
			}
			for _, c := range n.Children {
				if c.Label == e.To {
					out.Add(n.ID, c.ID)
				}
			}
		}
	case Var:
		r, ok := ev.env[e.Name]
		if !ok {
			panic(fmt.Sprintf("expath: unbound variable %s", e.Name))
		}
		return r
	case Cat:
		l := ev.eval(e.L)
		r := ev.eval(e.R)
		for f, mids := range l {
			for m := range mids {
				for t := range r[m] {
					out.Add(f, t)
				}
			}
		}
	case Union:
		l := ev.eval(e.L)
		r := ev.eval(e.R)
		for f, ts := range l {
			for t := range ts {
				out.Add(f, t)
			}
		}
		for f, ts := range r {
			for t := range ts {
				out.Add(f, t)
			}
		}
	case Star:
		base := ev.eval(e.E)
		// Reflexive-transitive closure: BFS from every node.
		for _, id := range ev.allIDs {
			out.Add(id, id)
			frontier := []xmltree.NodeID{id}
			for len(frontier) > 0 {
				var next []xmltree.NodeID
				for _, f := range frontier {
					for t := range base[f] {
						if !out.Has(id, t) {
							out.Add(id, t)
							next = append(next, t)
						}
					}
				}
				frontier = next
			}
		}
	case Qualified:
		inner := ev.eval(e.E)
		for f, ts := range inner {
			for t := range ts {
				if ev.evalQual(e.Q, t) {
					out.Add(f, t)
				}
			}
		}
	case DescSelf:
		// Semantically transparent: the tree evaluator always takes the
		// annotated alternative.
		return ev.eval(e.Alt)
	}
	return out
}

func (ev *evaluator) evalQual(q Qual, at xmltree.NodeID) bool {
	switch q := q.(type) {
	case QTrue:
		return true
	case QFalse:
		return false
	case QExpr:
		rel := ev.eval(q.E) // small DTD-bounded expressions; fine to recompute
		return len(rel[at]) > 0
	case QText:
		n := ev.doc.Node(at)
		return n != nil && n.Val == q.C
	case QNot:
		return !ev.evalQual(q.Q, at)
	case QAnd:
		return ev.evalQual(q.L, at) && ev.evalQual(q.R, at)
	case QOr:
		return ev.evalQual(q.L, at) || ev.evalQual(q.R, at)
	}
	return false
}
