package ra

import (
	"strings"
	"testing"
)

func TestOpCounts(t *testing.T) {
	p := &Program{
		Stmts: []Stmt{
			{Name: "a", Plan: Compose{L: Base{Rel: "R1"}, R: Fix{Seed: Base{Rel: "R2"}}}},
			{Name: "b", Plan: UnionAll{Kids: []Plan{Temp{Name: "a"}, Base{Rel: "R3"}, Base{Rel: "R4"}}}},
			{Name: "result", Plan: Diff{
				L: SelectVal{Child: Temp{Name: "b"}, Val: "x"},
				R: Semijoin{L: Base{Rel: "R5"}, R: Antijoin{L: Base{Rel: "R6"}, R: Base{Rel: "R7"}}},
			}},
		},
		Result: "result",
	}
	c := p.Count()
	if c.LFP != 1 {
		t.Errorf("LFP = %d", c.LFP)
	}
	if c.Joins != 3 { // compose + semijoin + antijoin
		t.Errorf("Joins = %d", c.Joins)
	}
	if c.Unions != 2 { // 3-way union
		t.Errorf("Unions = %d", c.Unions)
	}
	if c.Diffs != 1 || c.Sels != 1 {
		t.Errorf("Diffs=%d Sels=%d", c.Diffs, c.Sels)
	}
	if c.All() != 8 {
		t.Errorf("All = %d", c.All())
	}
}

func TestOpCountsRecUnion(t *testing.T) {
	p := &Program{
		Stmts: []Stmt{{Name: "result", Plan: RecUnion{
			Init:  []Tagged{{Tag: "c", Plan: Base{Rel: "Rc"}}},
			Edges: []RecEdge{{FromTag: "c", ToTag: "c", Rel: Base{Rel: "Rc"}}, {FromTag: "c", ToTag: "s", Rel: Base{Rel: "Rs"}}},
		}}},
		Result: "result",
	}
	c := p.Count()
	if c.RecFix != 1 || c.Joins != 2 || c.Unions != 2 {
		t.Errorf("counts = %+v", c)
	}
}

func TestProgramLookupAndString(t *testing.T) {
	p := &Program{
		Stmts:  []Stmt{{Name: "x", Plan: Base{Rel: "R"}}},
		Result: "x",
	}
	if p.Lookup("x") == nil || p.Lookup("y") != nil {
		t.Fatal("Lookup wrong")
	}
	if !strings.Contains(p.String(), "x ← R") {
		t.Fatalf("String = %q", p.String())
	}
}

func TestSQLRenderBasics(t *testing.T) {
	p := &Program{
		Stmts: []Stmt{
			{Name: "T_a", Plan: Base{Rel: "R_a"}},
			{Name: "result", Plan: SelectRoot{Child: Compose{L: Temp{Name: "T_a"}, R: Base{Rel: "R_b"}}}},
		},
		Result: "result",
	}
	sql := p.SQL(SQLRenderOptions{})
	for _, want := range []string{
		"CREATE TEMPORARY TABLE T_a",
		"CREATE TEMPORARY TABLE result",
		"FROM R_a",
		"JOIN",
		"WHERE q", // root selection predicate
		"SELECT DISTINCT T FROM result;",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("missing %q in:\n%s", want, sql)
		}
	}
}

func TestSQLRenderFixDialects(t *testing.T) {
	p := &Program{
		Stmts: []Stmt{{Name: "result", Plan: Fix{
			Seed:  Base{Rel: "R_e"},
			Start: Base{Rel: "R_s"},
			End:   Base{Rel: "R_t"},
		}}},
		Result: "result",
	}
	db2 := p.SQL(SQLRenderOptions{Dialect: DialectDB2})
	if !strings.Contains(db2, "WITH RECURSIVE fp") {
		t.Errorf("DB2 rendering missing recursive CTE:\n%s", db2)
	}
	if !strings.Contains(db2, "WHERE s.F IN (SELECT T FROM") {
		t.Errorf("DB2 rendering missing pushed start constraint:\n%s", db2)
	}
	if !strings.Contains(db2, "IN (SELECT F FROM") {
		t.Errorf("DB2 rendering missing pushed end constraint:\n%s", db2)
	}
	ora := p.SQL(SQLRenderOptions{Dialect: DialectOracle})
	if !strings.Contains(ora, "CONNECT BY") || !strings.Contains(ora, "START WITH") {
		t.Errorf("Oracle rendering missing CONNECT BY:\n%s", ora)
	}
}

// TestSQLRenderMaxRecIters: the engine's MaxLFPIters limit is pushed into
// the rendering — DB2 as a session statement, Oracle as an inline LEVEL
// guard — and omitted entirely when the limit is zero.
func TestSQLRenderMaxRecIters(t *testing.T) {
	p := &Program{
		Stmts: []Stmt{{Name: "result", Plan: Fix{
			Seed:  Base{Rel: "R_e"},
			Start: Base{Rel: "R_s"},
			End:   Base{Rel: "R_t"},
		}}},
		Result: "result",
	}

	db2, err := p.RenderSQL(SQLRenderOptions{Dialect: DialectDB2, MaxRecIters: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(db2.Session) != 1 || db2.Session[0] != "SET MAX_RECURSIVE_ITERATIONS = 7" {
		t.Fatalf("DB2 session statements = %q, want the recursion guard", db2.Session)
	}
	if len(db2.SessionReset) != 1 || db2.SessionReset[0] != "SET MAX_RECURSIVE_ITERATIONS = 0" {
		t.Fatalf("DB2 session reset = %q, want the guard restored to unbounded", db2.SessionReset)
	}

	ora, err := p.RenderSQL(SQLRenderOptions{Dialect: DialectOracle, MaxRecIters: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(ora.Session) != 0 {
		t.Fatalf("Oracle session statements = %q, want none (guard is inline)", ora.Session)
	}
	if sql := p.SQL(SQLRenderOptions{Dialect: DialectOracle, MaxRecIters: 7}); !strings.Contains(sql, "AND LEVEL <= 7") {
		t.Fatalf("Oracle rendering missing inline LEVEL guard:\n%s", sql)
	}

	unlimited, err := p.RenderSQL(SQLRenderOptions{Dialect: DialectDB2})
	if err != nil {
		t.Fatal(err)
	}
	if len(unlimited.Session) != 0 {
		t.Fatalf("unlimited DB2 rendering produced session statements %q", unlimited.Session)
	}
	if sql := p.SQL(SQLRenderOptions{Dialect: DialectOracle}); strings.Contains(sql, "LEVEL <=") {
		t.Fatalf("unlimited Oracle rendering carries a LEVEL guard:\n%s", sql)
	}
}

func TestSQLRenderRecUnionFig2(t *testing.T) {
	p := &Program{
		Stmts: []Stmt{{Name: "result", Plan: RecUnion{
			Init: []Tagged{{Tag: "c", Plan: Compose{L: IdentOf{Child: Base{Rel: "R_d"}}, R: Base{Rel: "R_c"}}}},
			Edges: []RecEdge{
				{FromTag: "c", ToTag: "c", Rel: Base{Rel: "R_c"}},
				{FromTag: "c", ToTag: "s", Rel: Base{Rel: "R_s"}},
				{FromTag: "s", ToTag: "c", Rel: Base{Rel: "R_c"}},
				{FromTag: "c", ToTag: "p", Rel: Base{Rel: "R_p"}},
				{FromTag: "p", ToTag: "c", Rel: Base{Rel: "R_c"}},
			},
			ResultTag: "p",
		}}},
		Result: "result",
	}
	sql := p.SQL(SQLRenderOptions{})
	// Fig 2's shape: a recursive CTE with Rid tags, one select per edge,
	// and the final Rid = 'p' selection.
	if !strings.Contains(sql, "WITH RECURSIVE R (F, T, Rid, V)") {
		t.Errorf("missing tagged recursive CTE:\n%s", sql)
	}
	if got := strings.Count(sql, "R.Rid = '"); got != 5 {
		t.Errorf("expected 5 edge selects, found %d:\n%s", got, sql)
	}
	if !strings.Contains(sql, "WHERE Rid = 'p'") {
		t.Errorf("missing final Rid selection:\n%s", sql)
	}
}

func TestSQLSanitizesNames(t *testing.T) {
	p := &Program{
		Stmts: []Stmt{
			{Name: "T_X[1,2,3]", Plan: Base{Rel: "R_a"}},
			{Name: "result", Plan: Temp{Name: "T_X[1,2,3]"}},
		},
		Result: "result",
	}
	sql := p.SQL(SQLRenderOptions{})
	if strings.Contains(sql, "[") || strings.Contains(sql, ",2,") {
		t.Errorf("unsanitized identifier:\n%s", sql)
	}
	if !strings.Contains(sql, "T_X_1_2_3") {
		t.Errorf("expected sanitized name:\n%s", sql)
	}
}

func TestSQLTopoOrdersStatements(t *testing.T) {
	// "late" is defined after its user; rendering must emit it first.
	p := &Program{
		Stmts: []Stmt{
			{Name: "result", Plan: Compose{L: Temp{Name: "late"}, R: Base{Rel: "R_b"}}},
			{Name: "late", Plan: Base{Rel: "R_a"}},
		},
		Result: "result",
	}
	sql := p.SQL(SQLRenderOptions{})
	iLate := strings.Index(sql, "CREATE TEMPORARY TABLE late")
	iRes := strings.Index(sql, "CREATE TEMPORARY TABLE result")
	if iLate < 0 || iRes < 0 || iLate > iRes {
		t.Errorf("statements out of order:\n%s", sql)
	}
}

func TestSQLEmptyUnion(t *testing.T) {
	p := &Program{
		Stmts:  []Stmt{{Name: "result", Plan: UnionAll{}}},
		Result: "result",
	}
	sql := p.SQL(SQLRenderOptions{})
	if !strings.Contains(sql, "WHERE 1 = 0") {
		t.Errorf("empty relation rendering:\n%s", sql)
	}
}

func TestPlanStrings(t *testing.T) {
	plans := []Plan{
		Base{Rel: "R"}, Temp{Name: "t"}, Ident{}, RootSeed{},
		IdentOf{Child: Base{Rel: "R"}}, IdentOf{Child: Base{Rel: "R"}, OnF: true},
		Compose{L: Base{Rel: "A"}, R: Base{Rel: "B"}},
		UnionAll{Kids: []Plan{Base{Rel: "A"}}},
		Fix{Seed: Base{Rel: "A"}, Start: Base{Rel: "S"}, End: Base{Rel: "E"}},
		SelectVal{Child: Base{Rel: "A"}, Val: "x"},
		SelectRoot{Child: Base{Rel: "A"}},
		Semijoin{L: Base{Rel: "A"}, R: Base{Rel: "B"}},
		Antijoin{L: Base{Rel: "A"}, R: Base{Rel: "B"}},
		Diff{L: Base{Rel: "A"}, R: Base{Rel: "B"}},
		TypeFilter{Child: Base{Rel: "A"}, Rel: "R_b"},
		RecUnion{Init: []Tagged{{Tag: "x", Plan: Base{Rel: "A"}}}, Edges: []RecEdge{{FromTag: "x", ToTag: "y", Rel: Base{Rel: "B"}}}},
	}
	for _, pl := range plans {
		if pl.String() == "" {
			t.Errorf("%T has empty String", pl)
		}
	}
}
