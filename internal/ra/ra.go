// Package ra defines the relational-algebra intermediate representation the
// translation targets (Fan et al. §5). Every plan produces a relation with
// schema (F, T, V): F and T are node IDs ("from"/"to", i.e. parentId/ID in
// the shredded store) and V is the text value of the T node. A program is a
// sequence of named statements R_e ← plan, mirroring the paper's output
// "list Q' of the form Re ← e2s(e)".
//
// The package is engine-agnostic: internal/rdb executes programs in memory,
// and sql.go renders them as SQL text with the single-input LFP operator
// expressed via WITH RECURSIVE (DB2) or CONNECT BY (Oracle).
package ra

import (
	"fmt"
	"strings"
)

// Plan is a relational-algebra operator tree producing an (F, T, V) relation.
type Plan interface {
	String() string
	isPlan()
}

// Base scans a stored relation R_A of the shredded database.
type Base struct{ Rel string }

// Temp references the result of an earlier statement.
type Temp struct{ Name string }

// Ident is the identity relation R_id: one tuple (v, v, v.val) per stored
// node (§5.1). It encodes ε; the optimized translation avoids it in favor of
// IdentOf wherever a composition context is available (§5.2 "Handling (E)*").
type Ident struct{}

// IdentOf is the scoped identity π_{T,T}(child) (or π_{F,F} when OnF): one
// (x, x) tuple per distinct endpoint of the child relation.
type IdentOf struct {
	Child Plan
	OnF   bool // use the F column instead of T
}

// Compose is the path join π_{L.F, R.T, R.V}(L ⋈_{L.T = R.F} R): e1/e2.
type Compose struct{ L, R Plan }

// UnionAll is the n-ary set union of its children.
type UnionAll struct{ Kids []Plan }

// Fix is the simple least-fixpoint operator Φ(R) (§3.3, Eq. 2): the
// transitive closure (one or more steps) of Seed under the composition join.
// Start and End, when non-nil, are the pushed selection constraints of §5.2:
// the iteration only explores paths whose first node is in π_T(Start)
// (resp. whose last node is in π_F(End)).
type Fix struct {
	Seed  Plan
	Start Plan
	End   Plan
	// TrackPaths adds the P attribute of §5.2 ("XML reconstruction"): the
	// engine records, per (F, T) pair, the intermediate node sequence by
	// concatenating edges as tuples join; the SQL rendering concatenates a
	// path string column.
	TrackPaths bool
	// Desc marks a fixpoint that computes (part of) a descendant closure:
	// every produced (F, T) pair relates a node to one of its proper
	// descendants. It is an execution hint — engines with a document-order
	// interval encoding may prune expansion candidates by containment — and
	// does not change the operator's semantics (or its printed form).
	Desc bool
}

// DescScan is the interval-containment descendant scan: the physical
// alternative to a descendant-closure fixpoint. It denotes the typed
// proper-descendant relation {(x, y, y.V) : x ∈ T(R_From), y ∈ T(R_To), y a
// proper descendant of x} — exactly the non-ε part of the recursive closure
// rec(From, To) over a document conforming to the DTD the program was
// translated against. Engines with a document-order interval encoding
// stamped with the same DTD fingerprint answer it with a begin-sorted range
// scan; everyone else (the SQL rendering, the naive oracle, an engine
// without intervals) evaluates Alt, the equivalent fixpoint plan.
//
// Start and End carry the same pushed selection constraints as Fix: sources
// restricted to π_T(Start), targets to π_F(End).
type DescScan struct {
	From, To string
	Alt      Plan
	Start    Plan
	End      Plan
}

// SelectVal is σ_{V=c}(child).
type SelectVal struct {
	Child Plan
	Val   string
}

// SelectRoot is σ_{F='_'}(child): tuples whose F is the virtual document
// root, the final statement of EXpToSQL (Fig 10, line 26).
type SelectRoot struct{ Child Plan }

// Semijoin keeps L tuples with a witness in R: L ⋉_{L.T = R.F} R. It encodes
// a path qualifier [q] applied at the target node (Fig 10, case 6).
type Semijoin struct{ L, R Plan }

// Antijoin keeps L tuples with no witness in R: the translation of [¬q]
// (Fig 10, case 11; Example 5.1 computes it as L \ (L ⋉ R)).
type Antijoin struct{ L, R Plan }

// Diff is set difference on (F, T).
type Diff struct{ L, R Plan }

// RootSeed is the one-tuple relation {('_', '_', "")}: the virtual document
// root as a context. Composing it with R_r anchors a query at the root.
type RootSeed struct{}

// TypeFilter keeps child tuples whose T node (F node when OnF) belongs to
// the stored relation Rel (i.e. is of that element type). With OnF it
// implements the source-typed edge step ⟨u→v⟩ of Example 3.5's typed joins:
// TypeFilter{Child: R_v, Rel: R_u, OnF: true} keeps v-edges out of u nodes.
type TypeFilter struct {
	Child Plan
	Rel   string
	OnF   bool
}

// RecUnion is the SQL'99 multi-relation fixpoint φ(R, R1 … Rk) used by the
// SQLGen-R baseline (§3.1, Eq. 1 and Fig 2): Init seeds the result; each
// iteration joins the growing result — restricted to tuples tagged FromTag —
// with every edge relation and unions the results in, tagging new tuples
// with ToTag. Rid provenance tags keep parent/child joins honest.
//
// Two tuple semantics are provided. With Pairs false, the operator
// accumulates reachable *edges* exactly as in Fig 2 / Table 2 (each new
// tuple is the joined edge's own (F, T)). With Pairs true it accumulates
// (origin, current) pairs — the product-automaton form, composable with the
// rest of a plan. Both flavors perform one join and one union per edge
// relation per iteration, the cost model of §3.1. ResultTag, when non-empty,
// filters the output to tuples carrying that tag (the final "Rid = 'p'"
// selection).
type RecUnion struct {
	Init      []Tagged
	Edges     []RecEdge
	Pairs     bool
	ResultTag string
}

// Tagged seeds RecUnion with a plan whose tuples carry the given tag.
type Tagged struct {
	Tag  string
	Plan Plan
}

// RecEdge is one select statement inside the with…recursive body.
type RecEdge struct {
	FromTag string // join against result tuples tagged FromTag
	ToTag   string // tag for produced tuples
	Rel     Plan   // the edge relation R_j
}

func (Base) isPlan()       {}
func (Temp) isPlan()       {}
func (Ident) isPlan()      {}
func (IdentOf) isPlan()    {}
func (Compose) isPlan()    {}
func (UnionAll) isPlan()   {}
func (Fix) isPlan()        {}
func (SelectVal) isPlan()  {}
func (SelectRoot) isPlan() {}
func (Semijoin) isPlan()   {}
func (Antijoin) isPlan()   {}
func (Diff) isPlan()       {}
func (RootSeed) isPlan()   {}
func (TypeFilter) isPlan() {}
func (RecUnion) isPlan()   {}
func (DescScan) isPlan()   {}

func (b Base) String() string { return b.Rel }
func (t Temp) String() string { return t.Name }
func (Ident) String() string  { return "Rid" }

func (i IdentOf) String() string {
	col := "T"
	if i.OnF {
		col = "F"
	}
	return fmt.Sprintf("ident_%s(%s)", col, i.Child)
}

func (c Compose) String() string { return fmt.Sprintf("(%s ⋈ %s)", c.L, c.R) }

func (u UnionAll) String() string {
	parts := make([]string, len(u.Kids))
	for i, k := range u.Kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, " ∪ ") + ")"
}

func (f Fix) String() string {
	s := fmt.Sprintf("Φ(%s", f.Seed)
	if f.Start != nil {
		s += fmt.Sprintf("; start∈T(%s)", f.Start)
	}
	if f.End != nil {
		s += fmt.Sprintf("; end∈F(%s)", f.End)
	}
	return s + ")"
}

func (s SelectVal) String() string  { return fmt.Sprintf("σ[V=%q](%s)", s.Val, s.Child) }
func (s SelectRoot) String() string { return fmt.Sprintf("σ[F='_'](%s)", s.Child) }
func (s Semijoin) String() string   { return fmt.Sprintf("(%s ⋉ %s)", s.L, s.R) }
func (a Antijoin) String() string   { return fmt.Sprintf("(%s ▷ %s)", a.L, a.R) }
func (d Diff) String() string       { return fmt.Sprintf("(%s \\ %s)", d.L, d.R) }

func (RootSeed) String() string { return "Rroot" }

func (t TypeFilter) String() string {
	col := "T"
	if t.OnF {
		col = "F"
	}
	return fmt.Sprintf("typefilter[%s.%s](%s)", t.Rel, col, t.Child)
}

func (d DescScan) String() string {
	s := fmt.Sprintf("desc(%s→%s", d.From, d.To)
	if d.Start != nil {
		s += fmt.Sprintf("; start∈T(%s)", d.Start)
	}
	if d.End != nil {
		s += fmt.Sprintf("; end∈F(%s)", d.End)
	}
	return s + fmt.Sprintf(")[%s]", d.Alt)
}

func (r RecUnion) String() string {
	var b strings.Builder
	b.WriteString("recunion(init:")
	for i, t := range r.Init {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, " %s:%s", t.Tag, t.Plan)
	}
	b.WriteString("; edges:")
	for i, e := range r.Edges {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, " %s→%s:%s", e.FromTag, e.ToTag, e.Rel)
	}
	b.WriteString(")")
	return b.String()
}

// Stmt is one statement R_name ← plan of a program.
type Stmt struct {
	Name string
	Plan Plan
}

// Program is an ordered statement sequence; Result names the statement whose
// relation is the query answer (its T column holds the answer node IDs).
type Program struct {
	Stmts  []Stmt
	Result string
	// DTDFP is the fingerprint of the DTD the program was translated
	// against ("" when unknown). Engines compare it with the stored
	// database's fingerprint before taking the DescScan interval fast path:
	// a program translated against a sub-DTD under-approximates the
	// descendant relation, so containment is only sound when they agree. It
	// is metadata, not part of the printed plan.
	DTDFP string
}

func (p *Program) String() string {
	var b strings.Builder
	for _, s := range p.Stmts {
		fmt.Fprintf(&b, "%s ← %s\n", s.Name, s.Plan)
	}
	fmt.Fprintf(&b, "result: %s\n", p.Result)
	return b.String()
}

// Lookup returns the plan bound to a statement name, or nil.
func (p *Program) Lookup(name string) Plan {
	for i := range p.Stmts {
		if p.Stmts[i].Name == name {
			return p.Stmts[i].Plan
		}
	}
	return nil
}

// OpCounts summarizes operator usage in a program: the RA-side numbers of
// Table 5 and the per-case counts quoted in §6.4.
type OpCounts struct {
	LFP      int // Fix operators (single-input Φ)
	RecFix   int // multi-relation RecUnion operators (SQLGen-R)
	Joins    int // Compose + Semijoin + Antijoin + RecUnion edge joins
	Unions   int // two-way unions (an n-ary union counts n-1)
	Diffs    int
	Sels     int
	DescScan int // interval-containment descendant scans
}

// All returns the total operator count (the ALL column of Table 5).
func (c OpCounts) All() int {
	return c.LFP + c.RecFix + c.Joins + c.Unions + c.Diffs + c.Sels + c.DescScan
}

// Count tallies the operators of every statement in the program.
func (p *Program) Count() OpCounts {
	var c OpCounts
	var walk func(pl Plan)
	walk = func(pl Plan) {
		switch pl := pl.(type) {
		case Compose:
			c.Joins++
			walk(pl.L)
			walk(pl.R)
		case UnionAll:
			if len(pl.Kids) > 1 {
				c.Unions += len(pl.Kids) - 1
			}
			for _, k := range pl.Kids {
				walk(k)
			}
		case Fix:
			c.LFP++
			walk(pl.Seed)
			if pl.Start != nil {
				walk(pl.Start)
			}
			if pl.End != nil {
				walk(pl.End)
			}
		case SelectVal:
			c.Sels++
			walk(pl.Child)
		case SelectRoot:
			c.Sels++
			walk(pl.Child)
		case Semijoin:
			c.Joins++
			walk(pl.L)
			walk(pl.R)
		case Antijoin:
			c.Joins++
			walk(pl.L)
			walk(pl.R)
		case Diff:
			c.Diffs++
			walk(pl.L)
			walk(pl.R)
		case IdentOf:
			walk(pl.Child)
		case TypeFilter:
			c.Joins++
			walk(pl.Child)
		case DescScan:
			c.DescScan++
			walk(pl.Alt)
			if pl.Start != nil {
				walk(pl.Start)
			}
			if pl.End != nil {
				walk(pl.End)
			}
		case RecUnion:
			c.RecFix++
			for _, t := range pl.Init {
				walk(t.Plan)
			}
			c.Joins += len(pl.Edges)
			c.Unions += len(pl.Edges)
			for _, e := range pl.Edges {
				walk(e.Rel)
			}
		}
	}
	for _, s := range p.Stmts {
		walk(s.Plan)
	}
	return c
}
