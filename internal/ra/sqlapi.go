package ra

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Typed rendering errors. Backends and the public facade match on these
// with errors.Is.
var (
	// ErrDialect reports an unknown or unsupported SQL dialect value.
	ErrDialect = errors.New("ra: unknown SQL dialect")
	// ErrUnsupportedPlan reports a plan with no SQL rendering.
	ErrUnsupportedPlan = errors.New("ra: plan has no SQL rendering")
)

// Valid reports whether d is a known dialect value.
func (d Dialect) Valid() bool {
	return d == DialectDB2 || d == DialectOracle
}

// String returns the canonical lowercase dialect name ("db2", "oracle").
func (d Dialect) String() string {
	switch d {
	case DialectDB2:
		return "db2"
	case DialectOracle:
		return "oracle"
	}
	return fmt.Sprintf("Dialect(%d)", int(d))
}

// ParseDialect resolves a dialect name ("db2", "oracle", case-insensitive)
// to its Dialect value, or returns ErrDialect.
func ParseDialect(s string) (Dialect, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "db2", "sql99", "":
		return DialectDB2, nil
	case "oracle":
		return DialectOracle, nil
	}
	return 0, fmt.Errorf("%w: %q", ErrDialect, s)
}

// The DDL and INSERT emitters below define the relational image of the
// shredded store for SQL backends: one (F, T, V) table per element type
// plus the (ID, VAL) node catalog. Columns are character-typed because the
// rendered programs compare against the virtual root marker '_' (RootSeed,
// SelectRoot); node IDs are stored as their decimal strings via
// EncodeNodeID.

// EdgeTableDDL returns the CREATE TABLE statement for a stored edge
// relation R_A(F, T, V).
func EdgeTableDDL(table string) string {
	return fmt.Sprintf("CREATE TABLE %s (F VARCHAR(32), T VARCHAR(32), V VARCHAR(32672))", table)
}

// NodesTableDDL returns the CREATE TABLE statement for the node catalog
// (ID, VAL) backing the R_id identity relation.
func NodesTableDDL(table string) string {
	return fmt.Sprintf("CREATE TABLE %s (ID VARCHAR(32), VAL VARCHAR(32672))", table)
}

// DropTableSQL returns the idempotent DROP statement for a table.
func DropTableSQL(table string) string {
	return "DROP TABLE IF EXISTS " + table
}

// InsertSQL returns a fully parameterized multi-row INSERT for the given
// columns: every value travels as a bind argument, so hostile content
// (quotes, NULs, newlines, non-UTF8) never reaches the SQL text. rows must
// be >= 1.
func InsertSQL(table string, cols []string, rows int) string {
	one := "(?" + strings.Repeat(", ?", len(cols)-1) + ")"
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s (%s) VALUES %s", table, strings.Join(cols, ", "), one)
	for i := 1; i < rows; i++ {
		b.WriteString(", ")
		b.WriteString(one)
	}
	return b.String()
}

// RootMarker is the F value of tuples whose parent is the virtual document
// root (node ID 0), as rendered by RootSeed and tested by SelectRoot.
const RootMarker = "_"

// EncodeNodeID maps a node ID to its stored string form: the root marker
// for the virtual root, the decimal string otherwise.
func EncodeNodeID(id int) string {
	if id == 0 {
		return RootMarker
	}
	return strconv.Itoa(id)
}

// DecodeNodeID inverts EncodeNodeID.
func DecodeNodeID(s string) (int, error) {
	if s == RootMarker {
		return 0, nil
	}
	return strconv.Atoi(s)
}
