package ra

import (
	"fmt"
	"sort"
	"strings"
)

// Dialect selects the SQL rendering of the LFP operator (Fig 4 of the
// paper): the recursive-CTE form supported by IBM DB2 (and SQL'99 engines),
// or Oracle's CONNECT BY.
type Dialect int

const (
	// DialectDB2 renders Φ(R) with WITH RECURSIVE (DB2 / SQL'99 engines).
	DialectDB2 Dialect = iota
	// DialectOracle renders Φ(R) with CONNECT BY.
	DialectOracle
)

// SQLRenderOptions configures rendering.
type SQLRenderOptions struct {
	Dialect Dialect
	// NodesTable names the catalog table holding (ID, VAL) for every
	// shredded node, used to materialize the R_id identity relation.
	NodesTable string
	// TempPrefix is prepended to every generated temporary-table name
	// (statements and lifted fixpoints alike). Backends that share one
	// database across concurrent executions use it to keep each run's
	// temporaries disjoint. Stored base relations are never prefixed.
	TempPrefix string
	// MaxRecIters > 0 caps iterations per recursive construct in the
	// rendered SQL, pushing the engine's MaxLFPIters limit into the
	// database: Oracle renderings guard CONNECT BY with AND LEVEL <= n,
	// DB2 renderings emit a SET MAX_RECURSIVE_ITERATIONS session statement
	// (RenderedSQL.Session) for the executing backend to install. 0 leaves
	// recursion unbounded.
	MaxRecIters int
}

// SQL renders the program as a sequence of SQL statements: one CREATE
// TEMPORARY TABLE per program statement, in dependency order, with fixpoint
// operators lifted into their own statements so every statement carries at
// most one recursive construct (the "sequence of SQL queries" form of §5).
//
// SQL is the lenient text form: an unknown dialect renders as DB2 and plans
// with no SQL form render an explanatory comment. Backends that execute the
// output use RenderSQL, which validates and returns typed errors instead.
func (p *Program) SQL(opts SQLRenderOptions) string {
	rs, _ := p.renderSQL(opts)
	var b strings.Builder
	for _, s := range rs.Stmts {
		b.WriteString(s.SQL)
		b.WriteString(";\n\n")
	}
	b.WriteString(rs.ResultQuery)
	b.WriteString(";\n")
	return b.String()
}

// SQLStmt is one rendered statement: the temporary table it creates and the
// full CREATE TEMPORARY TABLE … AS … text (no trailing semicolon), ready to
// be executed verbatim by a database/sql backend.
type SQLStmt struct {
	Table string
	SQL   string
}

// RenderedSQL is the structured form of a rendered program: the statements
// in dependency order and the final answer query. Executing every statement
// in order and then ResultQuery yields the answer node IDs in column T.
type RenderedSQL struct {
	// Session holds statements the backend must execute on its pinned
	// connection before the program's statements — session configuration
	// like the recursion-depth guard, not part of the program itself.
	Session []string
	// SessionReset undoes Session: the backend must execute these when the
	// run finishes so a pooled connection does not carry this run's session
	// configuration into later runs.
	SessionReset []string
	Stmts        []SQLStmt
	ResultTable  string
	ResultQuery  string
}

// RenderSQL renders the program for execution: the same statement sequence
// as SQL, but validated — an unknown dialect returns ErrDialect, a plan with
// no SQL form returns ErrUnsupportedPlan — and split into per-statement
// strings a backend can execute one at a time.
func (p *Program) RenderSQL(opts SQLRenderOptions) (*RenderedSQL, error) {
	if !opts.Dialect.Valid() {
		return nil, fmt.Errorf("%w: Dialect(%d)", ErrDialect, int(opts.Dialect))
	}
	return p.renderSQL(opts)
}

func (p *Program) renderSQL(opts SQLRenderOptions) (*RenderedSQL, error) {
	if opts.NodesTable == "" {
		opts.NodesTable = "all_nodes"
	}
	r := &sqlRenderer{opts: opts, names: map[string]string{}, used: map[string]bool{}, baseSeq: map[string]int{}}
	// Pre-assign sanitized names for all statements.
	for _, s := range p.Stmts {
		r.names[s.Name] = r.fresh(s.Name)
	}
	// Topologically order statements (the optimizer may append shared
	// temps after their uses).
	ordered := topoStmts(p)
	rs := &RenderedSQL{}
	if opts.MaxRecIters > 0 && opts.Dialect == DialectDB2 {
		// DB2 bounds WITH RECURSIVE depth per session; Oracle renderings
		// carry the equivalent guard inline (AND LEVEL <= n in renderFix).
		rs.Session = append(rs.Session,
			fmt.Sprintf("SET MAX_RECURSIVE_ITERATIONS = %d", opts.MaxRecIters))
		rs.SessionReset = append(rs.SessionReset,
			"SET MAX_RECURSIVE_ITERATIONS = 0")
	}
	for _, s := range ordered {
		for _, pre := range r.lift(s.Plan) {
			rs.Stmts = append(rs.Stmts, SQLStmt{
				Table: pre.name,
				SQL:   fmt.Sprintf("CREATE TEMPORARY TABLE %s AS\n%s", pre.name, pre.sql),
			})
		}
		sql := r.render(s.Plan, 0)
		rs.Stmts = append(rs.Stmts, SQLStmt{
			Table: r.names[s.Name],
			SQL:   fmt.Sprintf("CREATE TEMPORARY TABLE %s AS\n%s", r.names[s.Name], sql),
		})
	}
	rs.ResultTable = r.names[p.Result]
	rs.ResultQuery = fmt.Sprintf("SELECT DISTINCT T FROM %s", rs.ResultTable)
	return rs, r.err
}

// topoStmts orders statements so every Temp reference points backwards.
func topoStmts(p *Program) []Stmt {
	byName := map[string]Stmt{}
	for _, s := range p.Stmts {
		byName[s.Name] = s
	}
	var order []Stmt
	state := map[string]int{} // 0 new, 1 visiting, 2 done
	var visit func(name string)
	visit = func(name string) {
		s, ok := byName[name]
		if !ok || state[name] != 0 {
			return
		}
		state[name] = 1
		for _, dep := range TempRefs(s.Plan) {
			visit(dep)
		}
		state[name] = 2
		order = append(order, s)
	}
	for _, s := range p.Stmts {
		visit(s.Name)
	}
	return order
}

// TempRefs lists the temp-table names referenced by a plan, sorted; it
// defines the statement dependency graph used by parallel execution and the
// SQL renderer's topological ordering.
func TempRefs(p Plan) []string {
	set := map[string]bool{}
	var walk func(Plan)
	walk = func(p Plan) {
		switch p := p.(type) {
		case Temp:
			set[p.Name] = true
		case Compose:
			walk(p.L)
			walk(p.R)
		case UnionAll:
			for _, k := range p.Kids {
				walk(k)
			}
		case Fix:
			walk(p.Seed)
			if p.Start != nil {
				walk(p.Start)
			}
			if p.End != nil {
				walk(p.End)
			}
		case DescScan:
			walk(p.Alt)
			if p.Start != nil {
				walk(p.Start)
			}
			if p.End != nil {
				walk(p.End)
			}
		case SelectVal:
			walk(p.Child)
		case SelectRoot:
			walk(p.Child)
		case Semijoin:
			walk(p.L)
			walk(p.R)
		case Antijoin:
			walk(p.L)
			walk(p.R)
		case Diff:
			walk(p.L)
			walk(p.R)
		case IdentOf:
			walk(p.Child)
		case TypeFilter:
			walk(p.Child)
		case RecUnion:
			for _, t := range p.Init {
				walk(t.Plan)
			}
			for _, e := range p.Edges {
				walk(e.Rel)
			}
		}
	}
	walk(p)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

type lifted struct {
	name string
	sql  string
}

type sqlRenderer struct {
	opts    SQLRenderOptions
	names   map[string]string
	used    map[string]bool
	baseSeq map[string]int // next numeric suffix per colliding base name
	counter int
	lifts   []lifted
	aliasN  int
	err     error
}

// fresh sanitizes a statement name into a unique SQL identifier, applying
// the configured temporary-table prefix.
func (r *sqlRenderer) fresh(name string) string {
	var b strings.Builder
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		case c == '[', c == ',', c == ']':
			b.WriteRune('_')
		}
	}
	s := strings.Trim(b.String(), "_")
	if s == "" {
		s = "t"
	}
	s = r.opts.TempPrefix + s
	if !r.used[s] {
		r.used[s] = true
		return s
	}
	// Collision: programs lift thousands of same-named fixpoint temps, so
	// the suffix search must not restart from 2 each time.
	base := s
	i := r.baseSeq[base]
	if i < 2 {
		i = 2
	}
	for {
		s = fmt.Sprintf("%s_%d", base, i)
		i++
		if !r.used[s] {
			break
		}
	}
	r.baseSeq[base] = i
	r.used[s] = true
	return s
}

func (r *sqlRenderer) alias() string {
	r.aliasN++
	return fmt.Sprintf("q%d", r.aliasN)
}

// lift extracts every Fix and RecUnion in the plan into its own statement
// and returns their definitions in dependency order; the original plan's
// recursive nodes are replaced by temp references (mutating via names map is
// avoided: render recognizes lifted nodes by pointer identity through the
// liftNames map).
func (r *sqlRenderer) lift(p Plan) []lifted {
	r.lifts = nil
	r.liftPlan(p)
	return r.lifts
}

// liftNames maps rendered recursive nodes (by their String form, which is
// structural) to the lifted temp name. Within a single statement this is
// both sound and deduplicating.

func (r *sqlRenderer) liftPlan(p Plan) {
	switch p := p.(type) {
	case Fix:
		r.liftPlan(p.Seed)
		if p.Start != nil {
			r.liftPlan(p.Start)
		}
		if p.End != nil {
			r.liftPlan(p.End)
		}
		key := p.String()
		if _, done := r.names[key]; !done {
			name := r.fresh("fix")
			r.names[key] = name
			r.lifts = append(r.lifts, lifted{name: name, sql: r.renderFix(p)})
		}
	case RecUnion:
		for _, t := range p.Init {
			r.liftPlan(t.Plan)
		}
		for _, e := range p.Edges {
			r.liftPlan(e.Rel)
		}
		key := p.String()
		if _, done := r.names[key]; !done {
			name := r.fresh("rec")
			r.names[key] = name
			r.lifts = append(r.lifts, lifted{name: name, sql: r.renderRecUnion(p)})
		}
	case DescScan:
		r.liftPlan(p.Alt)
		if p.Start != nil {
			r.liftPlan(p.Start)
		}
		if p.End != nil {
			r.liftPlan(p.End)
		}
	case Compose:
		r.liftPlan(p.L)
		r.liftPlan(p.R)
	case UnionAll:
		for _, k := range p.Kids {
			r.liftPlan(k)
		}
	case SelectVal:
		r.liftPlan(p.Child)
	case SelectRoot:
		r.liftPlan(p.Child)
	case Semijoin:
		r.liftPlan(p.L)
		r.liftPlan(p.R)
	case Antijoin:
		r.liftPlan(p.L)
		r.liftPlan(p.R)
	case Diff:
		r.liftPlan(p.L)
		r.liftPlan(p.R)
	case IdentOf:
		r.liftPlan(p.Child)
	case TypeFilter:
		r.liftPlan(p.Child)
	}
}

func indent(s string, n int) string {
	pad := strings.Repeat("  ", n)
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = pad + l
		}
	}
	return strings.Join(lines, "\n")
}

// render produces a SELECT with columns F, T, V for the plan.
func (r *sqlRenderer) render(p Plan, depth int) string {
	switch p := p.(type) {
	case Base:
		return fmt.Sprintf("SELECT F, T, V FROM %s", p.Rel)
	case Temp:
		return fmt.Sprintf("SELECT F, T, V FROM %s", r.names[p.Name])
	case RootSeed:
		return "SELECT '_' AS F, '_' AS T, '' AS V"
	case Ident:
		return fmt.Sprintf("SELECT ID AS F, ID AS T, VAL AS V FROM %s", r.opts.NodesTable)
	case IdentOf:
		col := "T"
		if p.OnF {
			col = "F"
		}
		a := r.alias()
		return fmt.Sprintf("SELECT DISTINCT %s.%s AS F, %s.%s AS T, %s.V AS V FROM (\n%s\n) %s",
			a, col, a, col, a, indent(r.render(p.Child, depth+1), 1), a)
	case Compose:
		l, rt := r.alias(), r.alias()
		return fmt.Sprintf("SELECT DISTINCT %s.F, %s.T, %s.V FROM (\n%s\n) %s JOIN (\n%s\n) %s ON %s.T = %s.F",
			l, rt, rt,
			indent(r.render(p.L, depth+1), 1), l,
			indent(r.render(p.R, depth+1), 1), rt,
			l, rt)
	case UnionAll:
		if len(p.Kids) == 0 {
			return "SELECT F, T, V FROM (SELECT '_' AS F, '_' AS T, '' AS V) z WHERE 1 = 0"
		}
		parts := make([]string, len(p.Kids))
		for i, k := range p.Kids {
			parts[i] = r.setOperand(k, depth+1)
		}
		return strings.Join(parts, "\nUNION\n")
	case SelectVal:
		a := r.alias()
		return fmt.Sprintf("SELECT %s.F, %s.T, %s.V FROM (\n%s\n) %s WHERE %s.V = '%s'",
			a, a, a, indent(r.render(p.Child, depth+1), 1), a, a, escapeSQL(p.Val))
	case SelectRoot:
		a := r.alias()
		return fmt.Sprintf("SELECT %s.F, %s.T, %s.V FROM (\n%s\n) %s WHERE %s.F = '_'",
			a, a, a, indent(r.render(p.Child, depth+1), 1), a, a)
	case Semijoin:
		l, w := r.alias(), r.alias()
		return fmt.Sprintf("SELECT %s.F, %s.T, %s.V FROM (\n%s\n) %s WHERE EXISTS (SELECT 1 FROM (\n%s\n) %s WHERE %s.F = %s.T)",
			l, l, l, indent(r.render(p.L, depth+1), 1), l,
			indent(r.render(p.R, depth+1), 1), w, w, l)
	case Antijoin:
		l, w := r.alias(), r.alias()
		return fmt.Sprintf("SELECT %s.F, %s.T, %s.V FROM (\n%s\n) %s WHERE NOT EXISTS (SELECT 1 FROM (\n%s\n) %s WHERE %s.F = %s.T)",
			l, l, l, indent(r.render(p.L, depth+1), 1), l,
			indent(r.render(p.R, depth+1), 1), w, w, l)
	case Diff:
		return fmt.Sprintf("%s\nEXCEPT\n%s", r.setOperand(p.L, depth+1), r.setOperand(p.R, depth+1))
	case TypeFilter:
		a := r.alias()
		col := "T"
		if p.OnF {
			col = "F"
		}
		return fmt.Sprintf("SELECT %s.F, %s.T, %s.V FROM (\n%s\n) %s WHERE EXISTS (SELECT 1 FROM %s w WHERE w.T = %s.%s)",
			a, a, a, indent(r.render(p.Child, depth+1), 1), a, p.Rel, a, col)
	case Fix:
		// Rendered via a lifted statement.
		if name, ok := r.names[p.String()]; ok {
			return fmt.Sprintf("SELECT F, T, V FROM %s", name)
		}
		return r.renderFix(p)
	case RecUnion:
		if name, ok := r.names[p.String()]; ok {
			return fmt.Sprintf("SELECT F, T, V FROM %s", name)
		}
		return r.renderRecUnion(p)
	case DescScan:
		// A foreign RDBMS holds no interval encoding: the scan renders as
		// its equivalent fixpoint alternative, with the pushed constraints
		// as explicit filters (the alternative may be a shared temp that
		// does not carry them itself).
		if p.Start == nil && p.End == nil {
			return r.render(p.Alt, depth)
		}
		a := r.alias()
		var conds []string
		if p.Start != nil {
			conds = append(conds, fmt.Sprintf("%s.F IN (SELECT T FROM (\n%s\n) st)",
				a, indent(r.render(p.Start, depth+2), 1)))
		}
		if p.End != nil {
			conds = append(conds, fmt.Sprintf("%s.T IN (SELECT F FROM (\n%s\n) en)",
				a, indent(r.render(p.End, depth+2), 1)))
		}
		return fmt.Sprintf("SELECT %s.F, %s.T, %s.V FROM (\n%s\n) %s WHERE %s",
			a, a, a, indent(r.render(p.Alt, depth+1), 1), a, strings.Join(conds, " AND "))
	}
	if r.err == nil {
		r.err = fmt.Errorf("%w: %T", ErrUnsupportedPlan, p)
	}
	return "-- unsupported plan"
}

// setOperand renders a plan as an operand of UNION / EXCEPT. SQL gives the
// two operators equal precedence with left associativity, so an operand
// that is itself a set operation must be wrapped in a subselect: a bare
// "a EXCEPT b UNION c" parses as "(a EXCEPT b) UNION c" regardless of the
// plan shape that produced it.
func (r *sqlRenderer) setOperand(p Plan, depth int) string {
	compound := false
	switch p := p.(type) {
	case UnionAll:
		compound = len(p.Kids) > 1
	case Diff:
		compound = true
	}
	if !compound {
		return r.render(p, depth)
	}
	a := r.alias()
	return fmt.Sprintf("SELECT %s.F, %s.T, %s.V FROM (\n%s\n) %s",
		a, a, a, indent(r.render(p, depth+1), 1), a)
}

// renderFix renders the single-input LFP operator Φ(R) (Eq. 2 / Fig 4).
func (r *sqlRenderer) renderFix(p Fix) string {
	seed := r.render(p.Seed, 1)
	startCond := ""
	if p.Start != nil {
		startCond = fmt.Sprintf(" WHERE s.F IN (SELECT T FROM (\n%s\n) st)", indent(r.render(p.Start, 2), 1))
	}
	endSel := "SELECT DISTINCT F, T, V FROM fp"
	if p.End != nil {
		endSel = fmt.Sprintf("SELECT DISTINCT fp.F, fp.T, fp.V FROM fp WHERE fp.T IN (SELECT F FROM (\n%s\n) en)", indent(r.render(p.End, 2), 1))
	}
	if r.opts.Dialect == DialectOracle {
		// Fig 4, Oracle: CONNECT BY with the seed as the edge relation.
		start := "s.F IN (SELECT F FROM seed)"
		if p.Start != nil {
			start = fmt.Sprintf("s.F IN (SELECT T FROM (\n%s\n) st)", indent(r.render(p.Start, 2), 1))
		}
		connectBy := "CONNECT BY NOCYCLE PRIOR s.T = s.F"
		if r.opts.MaxRecIters > 0 {
			// LEVEL n reaches paths of n edges — the same frontier the
			// engine's n-th fixpoint iteration produces.
			connectBy += fmt.Sprintf(" AND LEVEL <= %d", r.opts.MaxRecIters)
		}
		sql := fmt.Sprintf(`WITH seed (F, T, V) AS (
%s
)
SELECT DISTINCT CONNECT_BY_ROOT s.F AS F, s.T AS T, s.V AS V
FROM seed s
START WITH %s
%s`, indent(seed, 1), start, connectBy)
		if p.End != nil {
			sql = fmt.Sprintf("SELECT * FROM (\n%s\n) cb WHERE cb.T IN (SELECT F FROM (\n%s\n) en)",
				indent(sql, 1), indent(r.render(p.End, 2), 1))
		}
		return sql
	}
	if p.TrackPaths {
		// The P attribute of §5.2: path reconstruction by string
		// concatenation (supported by both DB2 and Oracle).
		endSelP := strings.Replace(endSel, "fp.V", "fp.V, fp.P", 1)
		endSelP = strings.Replace(endSelP, "F, T, V FROM fp", "F, T, V, P FROM fp", 1)
		return fmt.Sprintf(`WITH RECURSIVE fp (F, T, V, P) AS (
  SELECT s.F, s.T, s.V, CAST(s.T AS VARCHAR(1000)) FROM (
%s
  ) s%s
  UNION ALL
  SELECT fp.F, s.T, s.V, fp.P || '/' || s.T FROM fp JOIN (
%s
  ) s ON fp.T = s.F
)
%s`, indent(seed, 1), startCond, indent(seed, 1), endSelP)
	}
	return fmt.Sprintf(`WITH RECURSIVE fp (F, T, V) AS (
  SELECT s.F, s.T, s.V FROM (
%s
  ) s%s
  UNION ALL
  SELECT fp.F, s.T, s.V FROM fp JOIN (
%s
  ) s ON fp.T = s.F
)
%s`, indent(seed, 1), startCond, indent(seed, 1), endSel)
}

// renderRecUnion renders the SQLGen-R multi-relation fixpoint exactly in the
// style of Fig 2: one select per edge inside the recursive body, Rid tags.
func (r *sqlRenderer) renderRecUnion(p RecUnion) string {
	var init []string
	for _, t := range p.Init {
		init = append(init, fmt.Sprintf("SELECT i.F, i.T, '%s' AS Rid, i.V FROM (\n%s\n) i",
			escapeSQL(t.Tag), indent(r.render(t.Plan, 2), 1)))
	}
	var body []string
	for _, e := range p.Edges {
		fcol := "e.F"
		if p.Pairs {
			fcol = "R.F"
		}
		body = append(body, fmt.Sprintf(
			"SELECT %s AS F, e.T, '%s' AS Rid, e.V FROM R, (\n%s\n) e WHERE R.T = e.F AND R.Rid = '%s'",
			fcol, escapeSQL(e.ToTag), indent(r.render(e.Rel, 2), 1), escapeSQL(e.FromTag)))
	}
	final := "SELECT DISTINCT F, T, V FROM R"
	if p.ResultTag != "" {
		final = fmt.Sprintf("SELECT DISTINCT F, T, V FROM R WHERE Rid = '%s'", escapeSQL(p.ResultTag))
	}
	// A fixpoint can degenerate to seeds only (no recursive edges reach the
	// result); emitting a bare "UNION ALL" arm would be invalid SQL.
	rec := indent(strings.Join(init, "\nUNION ALL\n"), 1)
	if len(body) > 0 {
		rec += "\n  UNION ALL\n" + indent(strings.Join(body, "\nUNION ALL\n"), 1)
	}
	return fmt.Sprintf(`WITH RECURSIVE R (F, T, Rid, V) AS (
%s
)
%s`, rec, final)
}

// escapeSQL escapes a value for embedding in a standard SQL string literal.
// Quote doubling is the only escape standard SQL defines: backslashes, NUL
// bytes, newlines and non-UTF8 byte sequences are all ordinary literal
// content and must pass through unchanged, or σ_{V=c} would compare against
// a different value than the one the store holds. EscapeStringLiteral is the
// exported form; the INSERT path never embeds values at all (InsertSQL is
// fully parameterized), so hostile bytes only ever travel as bind arguments
// or inside a quoted literal.
func escapeSQL(s string) string {
	return strings.ReplaceAll(s, "'", "''")
}
