// Package workload defines the DTDs, queries and datasets of the paper's
// examples and experiments (§2, §6): the dept running example, the
// cross-cycle DTD of Fig 11a, the BIOML extracts of Figs 11b/15a–d, the
// GedML extract of Fig 11c, and the view-rewriting DTDs of Fig 3.
//
// The BIOML and GedML figures are graph drawings whose exact edges are not
// recoverable from the paper's text; the graphs here are reconstructions
// constrained to match every stated statistic — node count n, edge count m
// and simple-cycle count c of Table 5, reachability of the benchmark
// queries' endpoints, and the per-case component sizes quoted in §6.4. Each
// constructor documents its constraints; TestWorkloadStats asserts them.
package workload

import (
	"xpath2sql/internal/dtd"
)

// star wraps a content in Kleene closure.
func star(c dtd.Content) dtd.Content { return dtd.Star{Item: c} }

func name(t string) dtd.Content { return dtd.Name{Type: t} }

func seq(items ...dtd.Content) dtd.Content { return dtd.Seq{Items: items} }

// starNames builds the content model (t1*, t2*, …): every listed child type
// optional and repeatable, the general form used by the extracted DTDs.
func starNames(types ...string) dtd.Content {
	items := make([]dtd.Content, len(types))
	for i, t := range types {
		items[i] = star(name(t))
	}
	if len(items) == 1 {
		return items[0]
	}
	return seq(items...)
}

// Dept returns the running-example DTD of Example 2.1: a 3-cycle graph over
// {dept, course, cno, title, prereq, takenBy, project, student, sno, name,
// qualified, pno, ptitle, required}.
func Dept() *dtd.DTD {
	d := dtd.New("dept")
	d.SetProd("dept", starNames("course"))
	d.SetProd("course", seq(name("cno"), name("title"), name("prereq"), name("takenBy"), star(name("project"))))
	d.SetProd("prereq", starNames("course"))
	d.SetProd("takenBy", starNames("student"))
	d.SetProd("student", seq(name("sno"), name("name"), name("qualified")))
	d.SetProd("qualified", starNames("course"))
	d.SetProd("project", seq(name("pno"), name("ptitle"), name("required")))
	d.SetProd("required", starNames("course"))
	for _, leaf := range []string{"cno", "title", "sno", "name", "pno", "ptitle"} {
		d.SetProd(leaf, dtd.Name{Text: true})
	}
	return d
}

// DeptText is the dept DTD in DTD syntax, exercising the parser in examples.
const DeptText = `<!-- root: dept -->
<!ELEMENT dept (course*)>
<!ELEMENT course (cno, title, prereq, takenBy, project*)>
<!ELEMENT prereq (course*)>
<!ELEMENT takenBy (student*)>
<!ELEMENT student (sno, name, qualified)>
<!ELEMENT qualified (course*)>
<!ELEMENT project (pno, ptitle, required)>
<!ELEMENT required (course*)>
<!ELEMENT cno (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT sno (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT pno (#PCDATA)>
<!ELEMENT ptitle (#PCDATA)>
`

// Cross returns the simple 2-cross-cycle DTD of Fig 11a: 4 nodes {a,b,c,d},
// 5 edges a→b, b→c, c→a, c→d, d→a; the simple cycles a→b→c→a and
// a→b→c→d→a share two edges ("cross"). Constraints: n=4, m=5, c=2
// (Table 5); the Exp-1 queries a/b//c/d etc. are answerable; both a and d
// lie on cycles so the Exp-2 selectivity sweeps (100–50,000 qualified a/d
// elements) are meaningful.
func Cross() *dtd.DTD {
	d := dtd.New("a")
	d.SetProd("a", starNames("b"))
	d.SetProd("b", starNames("c"))
	d.SetProd("c", starNames("a", "d"))
	d.SetProd("d", starNames("a"))
	return d
}

// CrossQueries are the four Exp-1 queries (Fig 12) in concrete syntax.
var CrossQueries = map[string]string{
	"Qa": "a/b//c/d",                     // with //
	"Qb": "a[.//c]//d",                   // twig join
	"Qc": "a[not(.//c)]",                 // with ¬ and //
	"Qd": "a[not(.//c) or (b and .//d)]", // with ¬, ∨, ∧ and //
	"Qe": "a[text()='SEL']/b//c/d",       // Exp-2: selection at the head
	"Qf": "a/b//c/d[text()='SEL']",       // Exp-2: selection at the tail
}

// BIOMLa returns the 2-cycle BIOML extract of Fig 15a.
// Constraints: n=4, m=5, c=2 (Table 5); gene//locus answerable (Table 4
// case 2a). Cycles: gene→dna→clone→gene and dna→locus→dna.
func BIOMLa() *dtd.DTD {
	d := dtd.New("gene")
	d.SetProd("gene", starNames("dna"))
	d.SetProd("dna", starNames("clone", "locus"))
	d.SetProd("clone", starNames("gene"))
	d.SetProd("locus", starNames("dna"))
	return d
}

// BIOMLb returns the 3-cycle extract of Fig 15b (cases 2b, 2c).
// Constraints: n=4, m=6, c=3. Adds clone→dna to BIOMLa; cycles:
// gene→dna→clone→gene, dna→locus→dna, dna→clone→dna.
func BIOMLb() *dtd.DTD {
	d := BIOMLa()
	d.SetProd("clone", starNames("gene", "dna"))
	return d
}

// BIOMLc returns the 3-cycle extract of Fig 15c (case 3a).
// Constraints: n=4, m=6, c=3. Adds locus→gene to BIOMLa; cycles:
// gene→dna→clone→gene, dna→locus→dna, gene→dna→locus→gene.
func BIOMLc() *dtd.DTD {
	d := BIOMLa()
	d.SetProd("locus", starNames("dna", "gene"))
	return d
}

// BIOMLd returns the 4-cycle extract of Fig 15d (case 3b).
// Constraints: n=4, m=7, c=4 (Table 5). BIOMLc plus clone→dna.
func BIOMLd() *dtd.DTD {
	d := BIOMLc()
	d.SetProd("clone", starNames("gene", "dna"))
	return d
}

// BIOML returns the full 4-cycle BIOML extract of Fig 11b (cases 4a, 4b).
// Constraints: a 4-cycle DTD over {gene, dna, clone, locus} whose strongly
// connected component spans all 7 edges (§6.4 quotes 7 joins and 7 unions
// per SQLGen-R iteration for case 4a); this coincides with Fig 15d's graph.
func BIOML() *dtd.DTD { return BIOMLd() }

// BIOMLCases are the Exp-4 query cases of Table 4.
type BIOMLCase struct {
	Name   string
	Query  string
	Cycles int
	DTD    func() *dtd.DTD
}

// BIOMLCases lists Table 4: the queries run over the BIOML extracts.
var BIOMLCases = []BIOMLCase{
	{Name: "2a", Query: "gene//locus", Cycles: 2, DTD: BIOMLa},
	{Name: "2b", Query: "gene//locus", Cycles: 3, DTD: BIOMLb},
	{Name: "2c", Query: "gene//dna", Cycles: 3, DTD: BIOMLb},
	{Name: "3a", Query: "gene//locus", Cycles: 3, DTD: BIOMLc},
	{Name: "3b", Query: "gene//locus", Cycles: 4, DTD: BIOMLd},
	{Name: "4a", Query: "gene//locus", Cycles: 4, DTD: BIOML},
	{Name: "4b", Query: "gene//dna", Cycles: 4, DTD: BIOML},
}

// GedML returns the 9-cycle GedML extract of Fig 11c.
// Constraints: n=5 nodes {Even, Sour, Data, Note, Obje}, m=11 edges, c=9
// simple cycles (Table 5; §6.4 quotes 11 joins/unions per SQLGen-R
// iteration, i.e. the component spans all 11 edges), every node reachable
// from the root Even, and Even//Data answerable (Fig 17's query).
func GedML() *dtd.DTD {
	d := dtd.New("Even")
	d.SetProd("Even", starNames("Obje"))
	d.SetProd("Obje", starNames("Even", "Sour", "Note"))
	d.SetProd("Sour", starNames("Even", "Data", "Note"))
	d.SetProd("Data", starNames("Sour", "Note"))
	d.SetProd("Note", starNames("Even", "Data"))
	return d
}

// Fig3D returns DTD D of Fig 3a (Example 3.2): root r, edges r→A, A→B,
// B→A (recursion), A→C.
func Fig3D() *dtd.DTD {
	d := dtd.New("r")
	d.SetProd("r", starNames("A"))
	d.SetProd("A", starNames("B", "C"))
	d.SetProd("B", starNames("A"))
	d.SetProd("C", dtd.Name{Text: true})
	return d
}

// Fig3DPrime returns DTD D′ of Fig 3b: D plus the edge (B, C).
func Fig3DPrime() *dtd.DTD {
	d := Fig3D()
	d.SetProd("B", starNames("A", "C"))
	return d
}

// FigD1 returns the DAG DTD D1 of Fig 3c / Example 3.3: nodes A1…An with
// edges (Ai, Aj) for all i < j, root A1. Rewriting //An over its containing
// D2 is the exponential-blowup witness for regular XPath.
func FigD1(n int) *dtd.DTD {
	d := dtd.New(aName(1))
	for i := 1; i <= n; i++ {
		var kids []string
		for j := i + 1; j <= n; j++ {
			kids = append(kids, aName(j))
		}
		if len(kids) == 0 {
			d.SetProd(aName(i), dtd.Name{Text: true})
		} else {
			d.SetProd(aName(i), starNames(kids...))
		}
	}
	return d
}

// FigD2 returns D2 of Fig 3d: D1 plus node B with edges (B, An) and (Ai, B)
// for i < n.
func FigD2(n int) *dtd.DTD {
	d := FigD1(n)
	for i := 1; i < n; i++ {
		var kids []string
		for j := i + 1; j <= n; j++ {
			kids = append(kids, aName(j))
		}
		kids = append(kids, "B")
		d.SetProd(aName(i), starNames(kids...))
	}
	d.SetProd("B", starNames(aName(n)))
	return d
}

func aName(i int) string { return "A" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
