package workload

import (
	"testing"

	"xpath2sql/internal/dtd"
)

// TestWorkloadStats asserts the reconstruction constraints of every DTD:
// the (n, m, c) statistics of Table 5 and the structural facts quoted in
// the paper's text.
func TestWorkloadStats(t *testing.T) {
	cases := []struct {
		name    string
		d       *dtd.DTD
		n, m, c int
	}{
		{"Cross", Cross(), 4, 5, 2},
		{"BIOMLa", BIOMLa(), 4, 5, 2},
		{"BIOMLb", BIOMLb(), 4, 6, 3},
		{"BIOMLc", BIOMLc(), 4, 6, 3},
		{"BIOMLd", BIOMLd(), 4, 7, 4},
		{"GedML", GedML(), 5, 11, 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.d.Check(); err != nil {
				t.Fatalf("Check: %v", err)
			}
			g := tc.d.BuildGraph()
			if got := g.NumNodes(); got != tc.n {
				t.Errorf("nodes = %d, want %d", got, tc.n)
			}
			if got := g.NumEdges(); got != tc.m {
				t.Errorf("edges = %d, want %d", got, tc.m)
			}
			if got := g.NumSimpleCycles(); got != tc.c {
				t.Errorf("simple cycles = %d, want %d", got, tc.c)
			}
			if !g.Recursive() {
				t.Errorf("expected recursive DTD")
			}
			// Every type must be reachable from the root.
			reach := g.Reachable(g.Root)
			for _, n := range g.Nodes {
				if n != g.Root && !reach[n] {
					t.Errorf("type %s unreachable from root %s", n, g.Root)
				}
			}
		})
	}
}

func TestDeptIsThreeCycle(t *testing.T) {
	g := Dept().BuildGraph()
	// Example 2.1: "Its dtd graph, a 3-cycle graph".
	if got := g.NumSimpleCycles(); got != 3 {
		t.Fatalf("dept simple cycles = %d, want 3", got)
	}
	if g.NumNodes() != 14 {
		t.Fatalf("dept has %d types, want 14", g.NumNodes())
	}
}

func TestDeptTextParses(t *testing.T) {
	d, err := dtd.Parse(DeptText)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.Root != "dept" {
		t.Fatalf("root = %q", d.Root)
	}
	g1 := d.BuildGraph()
	g2 := Dept().BuildGraph()
	if !g1.ContainedIn(g2) || !g2.ContainedIn(g1) {
		t.Fatalf("parsed dept DTD differs from programmatic one")
	}
}

func TestFig3Containment(t *testing.T) {
	d := Fig3D().BuildGraph()
	dp := Fig3DPrime().BuildGraph()
	if !d.ContainedIn(dp) {
		t.Fatalf("D should be contained in D'")
	}
	if dp.ContainedIn(d) {
		t.Fatalf("D' should not be contained in D")
	}
	d1 := FigD1(4).BuildGraph()
	d2 := FigD2(4).BuildGraph()
	if !d1.ContainedIn(d2) {
		t.Fatalf("D1 should be contained in D2")
	}
	if d1.Recursive() || d2.Recursive() {
		t.Fatalf("Fig 3c/d graphs are acyclic")
	}
}
