package cost

import (
	"testing"

	"xpath2sql/internal/core"
	"xpath2sql/internal/ra"
	"xpath2sql/internal/rdb"
	"xpath2sql/internal/shred"
	"xpath2sql/internal/workload"
	"xpath2sql/internal/xmlgen"
	"xpath2sql/internal/xmltree"
	"xpath2sql/internal/xpath"
)

func buildStats(t *testing.T, maxNodes int) (DBStats, *rdb.DB) {
	t.Helper()
	d := workload.Cross()
	var doc *xmltree.Document
	for seed := int64(1); ; seed++ {
		dd, err := xmlgen.Generate(d, xmlgen.Options{XL: 12, XR: 4, Seed: seed, MaxNodes: maxNodes})
		if err != nil {
			t.Fatal(err)
		}
		if dd.Size()*3 >= maxNodes {
			doc = dd
			break
		}
	}
	db, err := shred.Shred(doc, d)
	if err != nil {
		t.Fatal(err)
	}
	return Gather(db), db
}

func TestGather(t *testing.T) {
	s, db := buildStats(t, 2000)
	if s.Nodes != db.NumNodes() {
		t.Fatalf("nodes = %d", s.Nodes)
	}
	if s.AvgDepth <= 1 || s.MaxDepth < int(s.AvgDepth) {
		t.Fatalf("depths: avg %.1f max %d", s.AvgDepth, s.MaxDepth)
	}
	if s.RelSizes["R_a"] == 0 || s.RelSizes["R_b"] == 0 {
		t.Fatalf("relation sizes missing: %v", s.RelSizes)
	}
}

func TestEstimateMonotoneInSize(t *testing.T) {
	small, _ := buildStats(t, 1000)
	large, _ := buildStats(t, 8000)
	q := xpath.MustParse("a//d")
	res, err := core.Translate(q, workload.Cross(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	es := EstimateProgram(res.Program, small)
	el := EstimateProgram(res.Program, large)
	if es.Cost <= 0 || el.Cost <= 0 {
		t.Fatalf("non-positive costs: %v %v", es, el)
	}
	if el.Cost <= es.Cost {
		t.Fatalf("cost not monotone in size: small %.0f, large %.0f", es.Cost, el.Cost)
	}
	if el.ResultCard <= 0 {
		t.Fatalf("result card = %f", el.ResultCard)
	}
}

// TestRecUnionCostedHigher: the model must charge the black-box
// with…recursive its accumulative re-join cost, so for a deep recursive
// query SQLGen-R estimates above CycleEX.
func TestRecUnionCostedHigher(t *testing.T) {
	stats, _ := buildStats(t, 8000)
	q := xpath.MustParse("a//d")
	var costs = map[core.Strategy]float64{}
	for _, s := range []core.Strategy{core.StrategyCycleEX, core.StrategySQLGenR} {
		opts := core.DefaultOptions()
		opts.Strategy = s
		res, err := core.Translate(q, workload.Cross(), opts)
		if err != nil {
			t.Fatal(err)
		}
		costs[s] = EstimateProgram(res.Program, stats).Cost
	}
	if costs[core.StrategySQLGenR] <= costs[core.StrategyCycleEX] {
		t.Fatalf("R estimated at %.0f, X at %.0f — model misses the accumulative penalty",
			costs[core.StrategySQLGenR], costs[core.StrategyCycleEX])
	}
}

func TestChooseOrdersAdvice(t *testing.T) {
	stats, _ := buildStats(t, 4000)
	advice, err := Choose(xpath.MustParse("a/b//c/d"), workload.Cross(), stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(advice) != 3 {
		t.Fatalf("advice entries = %d", len(advice))
	}
	for i := 1; i < len(advice); i++ {
		if advice[i].Estimate.Cost < advice[i-1].Estimate.Cost {
			t.Fatalf("advice not sorted: %v", advice)
		}
	}
	// The recommended strategy for a deep recursive query is CycleEX.
	if advice[0].Strategy != core.StrategyCycleEX {
		t.Logf("note: best advice is %v (cost %.0f)", advice[0].Strategy, advice[0].Estimate.Cost)
	}
}

func TestEstimateEmptyProgram(t *testing.T) {
	stats := DBStats{RelSizes: map[string]int{}}
	p := &ra.Program{Stmts: []ra.Stmt{{Name: "result", Plan: ra.UnionAll{}}}, Result: "result"}
	e := EstimateProgram(p, stats)
	if e.Cost != 0 || e.ResultCard != 0 {
		t.Fatalf("empty program estimate: %+v", e)
	}
}
