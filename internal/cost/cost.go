// Package cost implements the cost model the paper lists as follow-up work
// (§8: "we are currently developing a cost model in order to provide better
// guidance for xpath query rewriting"). It estimates cardinalities and
// per-operator work for relational programs over a shredded database, and
// uses the estimates to choose a translation strategy per query.
//
// The model is deliberately simple — textbook equijoin estimation plus
// fixpoint-specific rules reflecting the engine's execution (§3): a
// single-input Φ produces about |seed paths| × depth tuples and costs one
// probe per produced tuple; the multi-relation with…recursive re-joins its
// whole accumulated relation against every edge relation each iteration
// (Eq. 1), costing iterations × |R| × k.
package cost

import (
	"math"

	"xpath2sql/internal/core"
	"xpath2sql/internal/dtd"
	"xpath2sql/internal/ra"
	"xpath2sql/internal/rdb"
	"xpath2sql/internal/xpath"
)

// DBStats summarizes a database for estimation.
type DBStats struct {
	RelSizes map[string]int // stored relation -> tuple count
	Nodes    int            // total stored nodes
	AvgDepth float64        // average node depth (≈ closure multiplier)
	MaxDepth int            // longest root path (≈ fixpoint iterations)
}

// Gather computes statistics from a shredded database using the parent
// catalog.
func Gather(db *rdb.DB) DBStats {
	s := DBStats{RelSizes: map[string]int{}, Nodes: db.NumNodes()}
	for name, rel := range db.Rels {
		s.RelSizes[name] = rel.Len()
	}
	depth := map[int]int{0: 0}
	var depthOf func(id int) int
	depthOf = func(id int) int {
		if d, ok := depth[id]; ok {
			return d
		}
		parent, ok := db.ParentOf[id]
		if !ok || parent == id {
			depth[id] = 1
			return 1
		}
		d := depthOf(parent) + 1
		depth[id] = d
		return d
	}
	total := 0
	for id := range db.ParentOf {
		d := depthOf(id)
		total += d
		if d > s.MaxDepth {
			s.MaxDepth = d
		}
	}
	if s.Nodes > 0 {
		s.AvgDepth = float64(total) / float64(s.Nodes)
	}
	return s
}

// Estimate is the model's output for a program.
type Estimate struct {
	// Cost is the estimated total work in tuple operations.
	Cost float64
	// ResultCard is the estimated cardinality of the result relation.
	ResultCard float64
}

// EstimateProgram estimates the cost of executing the program.
func EstimateProgram(p *ra.Program, s DBStats) Estimate {
	e := &estimator{stats: s, prog: p, card: map[string]float64{}}
	card := e.stmt(p.Result)
	return Estimate{Cost: e.cost, ResultCard: card}
}

type estimator struct {
	stats DBStats
	prog  *ra.Program
	card  map[string]float64 // memoized statement cardinalities
	cost  float64
}

func (e *estimator) stmt(name string) float64 {
	if c, ok := e.card[name]; ok {
		return c
	}
	e.card[name] = 0 // guard against cycles
	pl := e.prog.Lookup(name)
	if pl == nil {
		return 0
	}
	c := e.plan(pl)
	e.card[name] = c
	return c
}

// selectivity of an equality predicate on values.
const valSelectivity = 0.05

// fanout estimates tuples matched per probe in a composition join.
func (e *estimator) fanout(rightCard float64) float64 {
	if e.stats.Nodes == 0 {
		return 0
	}
	return rightCard / float64(e.stats.Nodes)
}

func (e *estimator) plan(pl ra.Plan) float64 {
	switch pl := pl.(type) {
	case ra.Base:
		return float64(e.stats.RelSizes[pl.Rel])
	case ra.Temp:
		return e.stmt(pl.Name)
	case ra.Ident:
		e.cost += float64(e.stats.Nodes)
		return float64(e.stats.Nodes)
	case ra.RootSeed:
		return 1
	case ra.IdentOf:
		c := e.plan(pl.Child)
		e.cost += c
		return c
	case ra.Compose:
		l := e.plan(pl.L)
		r := e.plan(pl.R)
		out := l * e.fanout(r)
		e.cost += l + out
		return out
	case ra.UnionAll:
		var out float64
		for _, k := range pl.Kids {
			out += e.plan(k)
		}
		e.cost += out
		return out
	case ra.SelectVal:
		c := e.plan(pl.Child)
		e.cost += c
		return c * valSelectivity
	case ra.SelectRoot:
		c := e.plan(pl.Child)
		e.cost += c
		// Roughly the root element's share.
		return math.Max(1, c/math.Max(1, float64(e.stats.Nodes)))
	case ra.Semijoin:
		l := e.plan(pl.L)
		r := e.plan(pl.R)
		e.cost += l + r
		return l * 0.5
	case ra.Antijoin:
		l := e.plan(pl.L)
		r := e.plan(pl.R)
		e.cost += l + r
		return l * 0.5
	case ra.Diff:
		l := e.plan(pl.L)
		r := e.plan(pl.R)
		e.cost += l + r
		return l * 0.5
	case ra.TypeFilter:
		c := e.plan(pl.Child)
		e.cost += c
		// A type filter keeps the fraction of nodes of that type.
		frac := 0.5
		if n := e.stats.RelSizes[pl.Rel]; e.stats.Nodes > 0 {
			frac = float64(n) / float64(e.stats.Nodes)
		}
		return c * frac
	case ra.Fix:
		seed := e.plan(pl.Seed)
		depth := math.Max(1, e.stats.AvgDepth)
		starts := seed
		if pl.Start != nil {
			starts = math.Min(seed, e.plan(pl.Start))
		}
		// Closure from the start frontier: about one path suffix per
		// (start, depth) step.
		out := starts * depth
		if pl.End != nil {
			e.plan(pl.End)
			out *= 0.5
		}
		// Semi-naive evaluation probes the seed once per produced tuple.
		e.cost += seed + out
		return out
	case ra.DescScan:
		from := float64(e.stats.RelSizes[pl.From])
		to := float64(e.stats.RelSizes[pl.To])
		srcs := from
		if pl.Start != nil {
			srcs = math.Min(srcs, e.plan(pl.Start))
		}
		frac := 1.0
		if from > 0 {
			frac = srcs / from
		}
		// Each To node lies under at most one From-typed ancestor per tree
		// level, so the full scan emits about |R_To| × depth tuples; the
		// interval kernel pays one binary search per source plus one
		// operation per emitted tuple — no fixpoint iteration. The fallback
		// alternative is not charged: engines without the encoding cost it
		// as the Fix it contains.
		out := to * math.Max(1, e.stats.AvgDepth) * frac
		if pl.End != nil {
			e.plan(pl.End)
			out *= 0.5
		}
		e.cost += srcs*math.Log2(math.Max(2, to)) + out
		return out
	case ra.RecUnion:
		var acc float64
		for _, t := range pl.Init {
			acc += e.plan(t.Plan)
		}
		var edges float64
		for _, ed := range pl.Edges {
			edges += 1
			e.plan(ed.Rel)
		}
		depth := math.Max(1, float64(e.stats.MaxDepth))
		out := acc * math.Max(1, e.stats.AvgDepth)
		// Eq. (1): every iteration re-joins the whole accumulated relation
		// with every edge relation — no delta optimization in the black
		// box.
		e.cost += depth * out * math.Max(1, edges)
		return out
	}
	return 0
}

// Advice is a per-strategy estimate.
type Advice struct {
	Strategy core.Strategy
	Estimate Estimate
}

// Choose translates the query under every strategy, estimates each program,
// and returns the advice sorted best-first. Translation failures (e.g. a
// query outside SQLGen-R's class) are skipped.
func Choose(q xpath.Path, d *dtd.DTD, s DBStats) ([]Advice, error) {
	var out []Advice
	for _, strat := range []core.Strategy{core.StrategyCycleEX, core.StrategyCycleE, core.StrategySQLGenR} {
		opts := core.DefaultOptions()
		opts.Strategy = strat
		res, err := core.Translate(q, d, opts)
		if err != nil {
			continue
		}
		out = append(out, Advice{Strategy: strat, Estimate: EstimateProgram(res.Program, s)})
	}
	// Insertion sort by cost (three entries).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Estimate.Cost < out[j-1].Estimate.Cost; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}
