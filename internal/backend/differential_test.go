package backend_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"xpath2sql/internal/backend"
	"xpath2sql/internal/backend/fakedb"
	"xpath2sql/internal/backend/sqlbe"
	"xpath2sql/internal/core"
	"xpath2sql/internal/dtd"
	"xpath2sql/internal/rdb"
	"xpath2sql/internal/shred"
	"xpath2sql/internal/workload"
	"xpath2sql/internal/xmlgen"
	"xpath2sql/internal/xmltree"
	"xpath2sql/internal/xpath"
)

var allStrategies = []core.Strategy{core.StrategyCycleEX, core.StrategyCycleE, core.StrategySQLGenR}

// randQuery builds a random query of the paper's fragment whose labels are
// drawn from the DTD's element types (same shape as the core differential
// suite, so the two harnesses cover the same query distribution).
func randQuery(r *rand.Rand, types []string, depth int) xpath.Path {
	pick := func() string { return types[r.Intn(len(types))] }
	if depth == 0 {
		switch r.Intn(4) {
		case 0:
			return xpath.Wildcard{}
		case 1:
			return xpath.Empty{}
		default:
			return xpath.Label{Name: pick()}
		}
	}
	switch r.Intn(8) {
	case 0:
		return xpath.Label{Name: pick()}
	case 1:
		return xpath.Seq{L: randQuery(r, types, depth-1), R: randQuery(r, types, depth-1)}
	case 2:
		return xpath.Desc{P: randQuery(r, types, depth-1)}
	case 3:
		return xpath.Seq{L: randQuery(r, types, depth-1), R: xpath.Desc{P: randQuery(r, types, depth-1)}}
	case 4:
		return xpath.Union{L: randQuery(r, types, depth-1), R: randQuery(r, types, depth-1)}
	case 5, 6:
		return xpath.Filter{P: randQuery(r, types, depth-1), Q: randQual(r, types, depth-1)}
	default:
		return xpath.Wildcard{}
	}
}

func randQual(r *rand.Rand, types []string, depth int) xpath.Qual {
	if depth == 0 {
		return xpath.QPath{P: xpath.Label{Name: types[r.Intn(len(types))]}}
	}
	switch r.Intn(6) {
	case 0, 1:
		return xpath.QPath{P: randQuery(r, types, depth-1)}
	case 2:
		return xpath.QText{C: fmt.Sprintf("%s-%d", types[r.Intn(len(types))], r.Intn(5))}
	case 3:
		return xpath.QNot{Q: randQual(r, types, depth-1)}
	case 4:
		return xpath.QAnd{L: randQual(r, types, depth-1), R: randQual(r, types, depth-1)}
	default:
		return xpath.QOr{L: randQual(r, types, depth-1), R: randQual(r, types, depth-1)}
	}
}

// valueFunc draws values from a small pool so text()=c qualifiers hit.
func valueFunc(typ string, r *rand.Rand) string {
	return fmt.Sprintf("%s-%d", typ, r.Intn(5))
}

// randDTD synthesizes a random recursive DTD: a chain t0 → t1 → … → tN
// closed into a cycle by a random back edge, with random chord edges and a
// couple of text leaves. Every instance is recursive by construction, so the
// translations exercise Fix (CycleE/EX) and RecUnion (SQLGen-R) plans.
func randDTD(seed int64) *dtd.DTD {
	r := rand.New(rand.NewSource(seed))
	n := 4 + r.Intn(3)
	types := make([]string, n)
	for i := range types {
		types[i] = fmt.Sprintf("t%d", i)
	}
	leaves := []string{"val", "tag"}

	kids := make(map[string][]string)
	for i, typ := range types {
		if i+1 < n {
			kids[typ] = append(kids[typ], types[i+1])
		}
		for j := range types {
			if j != i && r.Intn(4) == 0 {
				kids[typ] = append(kids[typ], types[j])
			}
		}
		if r.Intn(2) == 0 {
			kids[typ] = append(kids[typ], leaves[r.Intn(len(leaves))])
		}
	}
	// Close the chain into a cycle.
	kids[types[n-1]] = append(kids[types[n-1]], types[r.Intn(n-1)])

	d := dtd.New("doc")
	d.SetProd("doc", dtd.Star{Item: dtd.Name{Type: types[0]}})
	for _, typ := range types {
		seen := map[string]bool{}
		var items []dtd.Content
		for _, k := range kids[typ] {
			if seen[k] {
				continue
			}
			seen[k] = true
			items = append(items, dtd.Star{Item: dtd.Name{Type: k}})
		}
		if len(items) == 1 {
			d.SetProd(typ, items[0])
		} else {
			d.SetProd(typ, dtd.Seq{Items: items})
		}
	}
	for _, leaf := range leaves {
		d.SetProd(leaf, dtd.Name{Text: true})
	}
	return d
}

func oracle(q xpath.Path, doc *xmltree.Document) []int {
	set := xpath.EvalDoc(q, doc)
	ids := set.IDs()
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialBackends is the cross-backend property test: for random
// documents of the workload DTDs plus randomly synthesized recursive DTDs,
// and random queries of the paper's fragment, all three translation
// strategies must produce the same answer through the in-process rdb backend
// and through the SQL backend actually executing the rendered WITH RECURSIVE
// text over database/sql — and both must match the native XPath oracle.
func TestDifferentialBackends(t *testing.T) {
	dtds := map[string]*dtd.DTD{
		"dept":  workload.Dept(),
		"cross": workload.Cross(),
		"gedml": workload.GedML(),
		"rand1": randDTD(101),
		"rand2": randDTD(202),
		"rand3": randDTD(303),
	}
	queriesPerDTD := 18
	if testing.Short() {
		queriesPerDTD = 4
	}
	ctx := context.Background()
	for name, d := range dtds {
		t.Run(name, func(t *testing.T) {
			if err := d.Check(); err != nil {
				t.Fatalf("invalid DTD: %v", err)
			}
			types := d.Types()
			r := rand.New(rand.NewSource(int64(len(name)) * 7919))
			empties, answered := 0, 0
			for docSeed := int64(0); docSeed < 2; docSeed++ {
				doc, err := xmlgen.Generate(d, xmlgen.Options{
					XL: 6, XR: 3, Seed: docSeed + 1, MaxNodes: 150, ValueFunc: valueFunc,
				})
				if err != nil {
					t.Fatal(err)
				}
				db, err := shred.Shred(doc, d)
				if err != nil {
					t.Fatal(err)
				}

				dsn := fmt.Sprintf("memory://diff-%s-%d", name, docSeed)
				fakedb.Reset(dsn)
				be, err := sqlbe.Open(ctx, fakedb.DriverName, dsn, sqlbe.Options{})
				if err != nil {
					t.Fatal(err)
				}
				defer func() { be.Close(); fakedb.Reset(dsn) }()
				if err := be.Load(ctx, db); err != nil {
					t.Fatalf("sqlbe Load: %v", err)
				}
				ssnap, err := be.Snapshot(ctx)
				if err != nil {
					t.Fatal(err)
				}
				lsnap, err := backend.NewLocalDB(db).Snapshot(ctx)
				if err != nil {
					t.Fatal(err)
				}

				for i := 0; i < queriesPerDTD; i++ {
					q := randQuery(r, types, 3)
					want := oracle(q, doc)
					if len(want) == 0 {
						empties++
					} else {
						answered++
					}
					for _, s := range allStrategies {
						res, err := core.Translate(q, d, core.Options{Strategy: s, SQL: core.DefaultSQLOptions()})
						if err != nil {
							t.Fatalf("[%v] Translate(%s): %v", s, q, err)
						}
						check := func(which string, snap backend.Snapshot) {
							got, err := snap.Execute(ctx, res.Program, backend.ExecOptions{})
							if err != nil {
								t.Fatalf("[%v] %s Execute(%s): %v", s, which, q, err)
							}
							if !equalInts(got.IDs, want) {
								t.Fatalf("[%v] %s backend of %s = %v, want %v", s, which, q, got.IDs, want)
							}
						}
						check("rdb", lsnap)
						check("sql", ssnap)
					}
				}
			}
			// The distribution must exercise both sides: queries with
			// answers and queries with empty answers.
			if answered == 0 || empties == 0 {
				t.Fatalf("degenerate query mix: %d answered, %d empty", answered, empties)
			}
		})
	}
}

// TestRandDTDsAreRecursive pins the generator's guarantee: every synthesized
// DTD contains a cycle, so the differential suite always covers recursive
// plans (Fix and RecUnion), not just the workload graphs.
func TestRandDTDsAreRecursive(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		d := randDTD(seed)
		if err := d.Check(); err != nil {
			t.Fatalf("seed %d: invalid DTD: %v", seed, err)
		}
		if !isRecursive(d) {
			t.Fatalf("seed %d: DTD is not recursive:\n%s", seed, d)
		}
	}
}

// isRecursive reports whether the DTD graph has a cycle, via DFS.
func isRecursive(d *dtd.DTD) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	g := d.BuildGraph()
	color := map[string]int{}
	var visit func(string) bool
	visit = func(typ string) bool {
		color[typ] = gray
		for _, e := range g.Out[typ] {
			switch color[e.To] {
			case gray:
				return true
			case white:
				if visit(e.To) {
					return true
				}
			}
		}
		color[typ] = black
		return false
	}
	return visit(d.Root)
}

// TestParallelLocalMatchesSerial covers the Workers knob of ExecOptions on
// the local backend against the same programs run serially.
func TestParallelLocalMatchesSerial(t *testing.T) {
	d := workload.Dept()
	doc, err := xmlgen.Generate(d, xmlgen.Options{XL: 6, XR: 3, Seed: 2, MaxNodes: 200, ValueFunc: valueFunc})
	if err != nil {
		t.Fatal(err)
	}
	db, err := shred.Shred(doc, d)
	if err != nil {
		t.Fatal(err)
	}
	var _ *rdb.DB = db
	ctx := context.Background()
	snap, err := backend.NewLocalDB(db).Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, qs := range []string{"dept//course", "//course[.//prereq]//student"} {
		q, err := xpath.Parse(qs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Translate(q, d, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		serial, err := snap.Execute(ctx, res.Program, backend.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := snap.Execute(ctx, res.Program, backend.ExecOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(par.IDs, serial.IDs) {
			t.Fatalf("%s: parallel = %v, serial = %v", qs, par.IDs, serial.IDs)
		}
		if !equalInts(serial.IDs, oracle(q, doc)) {
			t.Fatalf("%s: serial = %v, oracle = %v", qs, serial.IDs, oracle(q, doc))
		}
	}
}
