// Package fakedb is a hermetic in-memory SQL database exposed as a
// database/sql driver, covering exactly the SQL the ra renderer and its
// DDL/INSERT emitters produce. It exists so the sqlbe backend — and the
// differential property suite validating the generated WITH RECURSIVE text
// — run with no external database and no third-party driver.
//
// The driver registers as "fakesql". A DSN names a database; connections
// with equal DSNs share one database, so a test can populate through one
// *sql.DB handle and query through another. Databases live for the life of
// the process (or until Reset).
//
// Deliberate semantic choices, documented in DESIGN.md "Backends":
//
//   - All values are raw byte strings; comparisons are byte equality.
//   - Set operations, DISTINCT and recursive CTEs dedupe on the full row
//     with a NUL-safe key.
//   - Recursive CTEs run semi-naively with dedup, so the UNION ALL the
//     renderer emits terminates on cyclic data — the least-fixpoint
//     semantics the paper's Φ operator demands, which production engines
//     approximate with CYCLE clauses or UNION.
//   - Temporary tables share the database's single namespace; callers that
//     interleave executions keep them disjoint with ra's TempPrefix.
package fakedb

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// DriverName is the name the driver registers under.
const DriverName = "fakesql"

func init() {
	sql.Register(DriverName, Driver{})
}

var (
	regMu sync.Mutex
	reg   = map[string]*memDB{}
)

func getDB(dsn string) *memDB {
	regMu.Lock()
	defer regMu.Unlock()
	db, ok := reg[dsn]
	if !ok {
		db = &memDB{tables: map[string]*table{}}
		reg[dsn] = db
	}
	return db
}

// Reset drops the database named by dsn, so tests start clean.
func Reset(dsn string) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(reg, dsn)
}

type memDB struct {
	mu     sync.Mutex
	tables map[string]*table // keyed by lowercase name
}

// exec parses and runs one statement, returning result rows for queries.
// recLimit > 0 caps recursive-CTE iterations (the connection's
// MAX_RECURSIVE_ITERATIONS session setting); 0 leaves recursion unbounded.
func (db *memDB) exec(query string, args []string, recLimit int) (*table, int64, error) {
	st, err := parseStatement(query)
	if err != nil {
		return nil, 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	switch st := st.(type) {
	case *createTable:
		name := strings.ToLower(st.name)
		if _, exists := db.tables[name]; exists {
			return nil, 0, fmt.Errorf("fakesql: table %q already exists", st.name)
		}
		db.tables[name] = &table{cols: st.cols}
		return nil, 0, nil
	case *createTableAs:
		name := strings.ToLower(st.name)
		if _, exists := db.tables[name]; exists {
			return nil, 0, fmt.Errorf("fakesql: table %q already exists", st.name)
		}
		t, err := newEvaluator(db, args, recLimit).evalQuery(st.query, nil)
		if err != nil {
			return nil, 0, err
		}
		db.tables[name] = t
		return nil, int64(len(t.rows)), nil
	case *dropTable:
		name := strings.ToLower(st.name)
		if _, exists := db.tables[name]; !exists {
			if st.ifExists {
				return nil, 0, nil
			}
			return nil, 0, fmt.Errorf("fakesql: no such table %q", st.name)
		}
		delete(db.tables, name)
		return nil, 0, nil
	case *insertStmt:
		t, exists := db.tables[strings.ToLower(st.table)]
		if !exists {
			return nil, 0, fmt.Errorf("fakesql: no such table %q", st.table)
		}
		if st.params != len(args) {
			return nil, 0, fmt.Errorf("fakesql: statement has %d placeholders, got %d arguments", st.params, len(args))
		}
		// Column order: map the INSERT's column list onto the table's.
		order := make([]int, len(st.cols))
		if len(st.cols) == 0 {
			if len(t.cols) == 0 {
				return nil, 0, fmt.Errorf("fakesql: INSERT into column-less table %q", st.table)
			}
			order = make([]int, len(t.cols))
			for i := range order {
				order[i] = i
			}
		} else {
			for i, c := range st.cols {
				idx := t.colIndex(c)
				if idx < 0 {
					return nil, 0, fmt.Errorf("fakesql: table %q has no column %q", st.table, c)
				}
				order[i] = idx
			}
		}
		ev := newEvaluator(db, args, recLimit)
		var n int64
		for _, exprRow := range st.rows {
			if len(exprRow) != len(order) {
				return nil, 0, fmt.Errorf("fakesql: INSERT row has %d values for %d columns", len(exprRow), len(order))
			}
			row := make([]string, len(t.cols))
			for i, e := range exprRow {
				v, err := ev.evalExpr(e, nil)
				if err != nil {
					return nil, 0, err
				}
				row[order[i]] = v
			}
			t.rows = append(t.rows, row)
			n++
		}
		return nil, n, nil
	case *queryStmt:
		t, err := newEvaluator(db, args, recLimit).evalQuery(st.query, nil)
		if err != nil {
			return nil, 0, err
		}
		return t, 0, nil
	}
	return nil, 0, fmt.Errorf("fakesql: unknown statement %T", st)
}

// ---- database/sql driver plumbing ----

// Driver implements driver.Driver.
type Driver struct{}

// Open implements driver.Driver.
func (Driver) Open(dsn string) (driver.Conn, error) {
	return &conn{db: getDB(dsn)}, nil
}

type conn struct {
	db *memDB
	// recLimit holds the connection's MAX_RECURSIVE_ITERATIONS session
	// setting (0 = unbounded), mirroring DB2: the limit is per connection,
	// installed by a SET statement, and caps every recursive CTE run on it.
	recLimit int
}

func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return &stmt{c: c, query: query}, nil
}

func (c *conn) Close() error { return nil }

func (c *conn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("fakesql: transactions are not supported")
}

// ExecContext implements driver.ExecerContext.
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if n, ok, err := c.setSession(query); ok {
		if err != nil {
			return nil, err
		}
		c.recLimit = n
		return driver.RowsAffected(0), nil
	}
	vals, err := namedToStrings(args)
	if err != nil {
		return nil, err
	}
	_, n, err := c.db.exec(query, vals, c.recLimit)
	if err != nil {
		return nil, err
	}
	return driver.RowsAffected(n), nil
}

// setSession recognizes the one session statement the renderer emits,
// SET MAX_RECURSIVE_ITERATIONS = n. ok reports whether query is a SET
// statement at all; the statement affects only this connection.
func (c *conn) setSession(query string) (n int, ok bool, err error) {
	s := strings.TrimSpace(query)
	const kw = "SET "
	if len(s) < len(kw) || !strings.EqualFold(s[:len(kw)], kw) {
		return 0, false, nil
	}
	name, val, found := strings.Cut(s[len(kw):], "=")
	if !found || !strings.EqualFold(strings.TrimSpace(name), "MAX_RECURSIVE_ITERATIONS") {
		return 0, true, fmt.Errorf("fakesql: unsupported SET statement %q", query)
	}
	n, err = strconv.Atoi(strings.TrimSpace(val))
	if err != nil || n < 0 {
		return 0, true, fmt.Errorf("fakesql: SET MAX_RECURSIVE_ITERATIONS wants a non-negative integer, got %q", strings.TrimSpace(val))
	}
	return n, true, nil
}

// QueryContext implements driver.QueryerContext.
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	vals, err := namedToStrings(args)
	if err != nil {
		return nil, err
	}
	t, _, err := c.db.exec(query, vals, c.recLimit)
	if err != nil {
		return nil, err
	}
	if t == nil {
		t = &table{}
	}
	return &rows{t: t}, nil
}

type stmt struct {
	c     *conn
	query string
}

func (s *stmt) Close() error  { return nil }
func (s *stmt) NumInput() int { return -1 }

func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.c.ExecContext(context.Background(), s.query, valuesToNamed(args))
}

func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.c.QueryContext(context.Background(), s.query, valuesToNamed(args))
}

func valuesToNamed(args []driver.Value) []driver.NamedValue {
	out := make([]driver.NamedValue, len(args))
	for i, v := range args {
		out[i] = driver.NamedValue{Ordinal: i + 1, Value: v}
	}
	return out
}

func namedToStrings(args []driver.NamedValue) ([]string, error) {
	out := make([]string, len(args))
	for i, a := range args {
		switch v := a.Value.(type) {
		case string:
			out[i] = v
		case []byte:
			out[i] = string(v)
		case int64:
			out[i] = strconv.FormatInt(v, 10)
		case nil:
			out[i] = ""
		default:
			return nil, fmt.Errorf("fakesql: unsupported bind argument type %T", a.Value)
		}
	}
	return out, nil
}

type rows struct {
	t   *table
	idx int
}

func (r *rows) Columns() []string { return r.t.cols }
func (r *rows) Close() error      { return nil }

func (r *rows) Next(dest []driver.Value) error {
	if r.idx >= len(r.t.rows) {
		return io.EOF
	}
	for i, v := range r.t.rows[r.idx] {
		dest[i] = v
	}
	r.idx++
	return nil
}
