package fakedb

import (
	"database/sql"
	"fmt"
	"reflect"
	"sort"
	"testing"
)

func openClean(t *testing.T, name string) *sql.DB {
	t.Helper()
	dsn := "memory://" + name
	Reset(dsn)
	db, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close(); Reset(dsn) })
	return db
}

func mustExec(t *testing.T, db *sql.DB, q string, args ...any) {
	t.Helper()
	if _, err := db.Exec(q, args...); err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
}

func queryStrings(t *testing.T, db *sql.DB, q string, args ...any) [][]string {
	t.Helper()
	rs, err := db.Query(q, args...)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	defer rs.Close()
	cols, err := rs.Columns()
	if err != nil {
		t.Fatalf("columns: %v", err)
	}
	var out [][]string
	for rs.Next() {
		vals := make([]any, len(cols))
		for i := range vals {
			var s string
			vals[i] = &s
		}
		if err := rs.Scan(vals...); err != nil {
			t.Fatalf("scan: %v", err)
		}
		row := make([]string, len(cols))
		for i := range cols {
			row[i] = *vals[i].(*string)
		}
		out = append(out, row)
	}
	if err := rs.Err(); err != nil {
		t.Fatalf("rows: %v", err)
	}
	return out
}

func col0(rows [][]string) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r[0]
	}
	sort.Strings(out)
	return out
}

func TestCreateInsertSelect(t *testing.T) {
	db := openClean(t, "basic")
	mustExec(t, db, "CREATE TABLE R_a (F VARCHAR(32), T VARCHAR(32), V VARCHAR(32672))")
	mustExec(t, db, "INSERT INTO R_a (F, T, V) VALUES (?, ?, ?), (?, ?, ?)", "_", "1", "x", "1", "2", "y")
	got := queryStrings(t, db, "SELECT T FROM R_a")
	if want := []string{"1", "2"}; !reflect.DeepEqual(col0(got), want) {
		t.Fatalf("T column = %v, want %v", got, want)
	}
	got = queryStrings(t, db, "SELECT a.T, a.V FROM R_a a WHERE a.F = '_'")
	if len(got) != 1 || got[0][0] != "1" || got[0][1] != "x" {
		t.Fatalf("root select = %v", got)
	}
}

func TestJoinUnionExceptDistinct(t *testing.T) {
	db := openClean(t, "setops")
	mustExec(t, db, "CREATE TABLE e (F VARCHAR(32), T VARCHAR(32), V VARCHAR(32))")
	for _, r := range [][]string{{"1", "2", "b"}, {"2", "3", "c"}, {"3", "4", "d"}} {
		mustExec(t, db, "INSERT INTO e (F, T, V) VALUES (?, ?, ?)", r[0], r[1], r[2])
	}
	// Two-step paths via self join.
	got := queryStrings(t, db, `SELECT DISTINCT l.F, r.T, r.V FROM (
  SELECT F, T, V FROM e
) l JOIN (
  SELECT F, T, V FROM e
) r ON l.T = r.F`)
	if len(got) != 2 {
		t.Fatalf("compose = %v", got)
	}
	// UNION dedupes, EXCEPT subtracts.
	got = queryStrings(t, db, "SELECT F, T, V FROM e\nUNION\nSELECT F, T, V FROM e")
	if len(got) != 3 {
		t.Fatalf("union = %v", got)
	}
	got = queryStrings(t, db, `SELECT F, T, V FROM e
EXCEPT
SELECT e2.F, e2.T, e2.V FROM e e2 WHERE e2.V = 'c'`)
	if len(got) != 2 {
		t.Fatalf("except = %v", got)
	}
}

func TestExistsAndIn(t *testing.T) {
	db := openClean(t, "exists")
	mustExec(t, db, "CREATE TABLE e (F VARCHAR(32), T VARCHAR(32), V VARCHAR(32))")
	for _, r := range [][]string{{"1", "2", "b"}, {"2", "3", "c"}} {
		mustExec(t, db, "INSERT INTO e (F, T, V) VALUES (?, ?, ?)", r[0], r[1], r[2])
	}
	got := queryStrings(t, db, `SELECT l.F, l.T, l.V FROM (
  SELECT F, T, V FROM e
) l WHERE EXISTS (SELECT 1 FROM (
  SELECT F, T, V FROM e
) w WHERE w.F = l.T)`)
	if len(got) != 1 || got[0][1] != "2" {
		t.Fatalf("semijoin = %v", got)
	}
	got = queryStrings(t, db, `SELECT l.F, l.T, l.V FROM (
  SELECT F, T, V FROM e
) l WHERE NOT EXISTS (SELECT 1 FROM (
  SELECT F, T, V FROM e
) w WHERE w.F = l.T)`)
	if len(got) != 1 || got[0][1] != "3" {
		t.Fatalf("antijoin = %v", got)
	}
	got = queryStrings(t, db, `SELECT s.T FROM e s WHERE s.F IN (SELECT T FROM e)`)
	if len(got) != 1 || got[0][0] != "3" {
		t.Fatalf("in = %v", got)
	}
}

func TestRecursiveCTETerminatesOnCycle(t *testing.T) {
	db := openClean(t, "cycle")
	mustExec(t, db, "CREATE TABLE e (F VARCHAR(32), T VARCHAR(32), V VARCHAR(32))")
	// A 3-cycle: 1→2→3→1. Literal UNION ALL recursion would never stop.
	for _, r := range [][]string{{"1", "2", ""}, {"2", "3", ""}, {"3", "1", ""}} {
		mustExec(t, db, "INSERT INTO e (F, T, V) VALUES (?, ?, ?)", r[0], r[1], r[2])
	}
	got := queryStrings(t, db, `WITH RECURSIVE fp (F, T, V) AS (
  SELECT s.F, s.T, s.V FROM (
    SELECT F, T, V FROM e
  ) s
  UNION ALL
  SELECT fp.F, s.T, s.V FROM fp JOIN (
    SELECT F, T, V FROM e
  ) s ON fp.T = s.F
)
SELECT DISTINCT F, T, V FROM fp`)
	// Closure of a 3-cycle: all 9 (F, T) pairs.
	if len(got) != 9 {
		t.Fatalf("closure size = %d, want 9 (%v)", len(got), got)
	}
}

func TestTempTableAsAndDrop(t *testing.T) {
	db := openClean(t, "temp")
	mustExec(t, db, "CREATE TABLE e (F VARCHAR(32), T VARCHAR(32), V VARCHAR(32))")
	mustExec(t, db, "INSERT INTO e (F, T, V) VALUES (?, ?, ?)", "_", "1", "v")
	mustExec(t, db, "CREATE TEMPORARY TABLE t1 AS\nSELECT F, T, V FROM e")
	got := queryStrings(t, db, "SELECT DISTINCT T FROM t1")
	if len(got) != 1 || got[0][0] != "1" {
		t.Fatalf("temp = %v", got)
	}
	mustExec(t, db, "DROP TABLE IF EXISTS t1")
	mustExec(t, db, "DROP TABLE IF EXISTS t1") // idempotent
	if _, err := db.Query("SELECT T FROM t1"); err == nil {
		t.Fatal("expected error querying dropped table")
	}
}

func TestHostileValuesRoundTrip(t *testing.T) {
	db := openClean(t, "hostile")
	mustExec(t, db, "CREATE TABLE e (F VARCHAR(32), T VARCHAR(32), V VARCHAR(32672))")
	hostiles := []string{
		"it's",
		"a''b",
		"nul\x00byte",
		"line\nbreak",
		"bad\xff\xfeutf8",
		"quote-then-nul'\x00",
		"",
	}
	for i, v := range hostiles {
		mustExec(t, db, "INSERT INTO e (F, T, V) VALUES (?, ?, ?)", "_", fmt.Sprint(i+1), v)
	}
	for i, v := range hostiles {
		// Literal comparison path (SelectVal): quote-doubling only.
		var litB []byte
		for _, c := range []byte(v) {
			if c == '\'' {
				litB = append(litB, '\'', '\'')
			} else {
				litB = append(litB, c)
			}
		}
		lit := string(litB)
		got := queryStrings(t, db, "SELECT a.T FROM e a WHERE a.V = '"+lit+"'")
		if len(got) != 1 || got[0][0] != fmt.Sprint(i+1) {
			t.Fatalf("hostile %q: got %v", v, got)
		}
	}
	// Values come back byte-identical.
	rows := queryStrings(t, db, "SELECT V FROM e")
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r[0]] = true
	}
	for _, v := range hostiles {
		if !seen[v] {
			t.Fatalf("value %q did not round-trip (have %q)", v, rows)
		}
	}
}

func TestSharedDSNAndErrors(t *testing.T) {
	db := openClean(t, "shared")
	db2, err := sql.Open(DriverName, "memory://shared")
	if err != nil {
		t.Fatalf("open second handle: %v", err)
	}
	defer db2.Close()
	mustExec(t, db, "CREATE TABLE x (A VARCHAR(1))")
	mustExec(t, db2, "INSERT INTO x (A) VALUES (?)", "z")
	if got := queryStrings(t, db, "SELECT A FROM x"); len(got) != 1 || got[0][0] != "z" {
		t.Fatalf("shared dsn = %v", got)
	}
	if _, err := db.Exec("CREATE TABLE x (A VARCHAR(1))"); err == nil {
		t.Fatal("expected duplicate-table error")
	}
	if _, err := db.Query("SELECT nope FROM x"); err == nil {
		t.Fatal("expected unknown-column error")
	}
	if _, err := db.Query("SELECT A FROM x WHERE A LIKE 'z'"); err == nil {
		t.Fatal("expected parse error for unsupported syntax")
	}
}
