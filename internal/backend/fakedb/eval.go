package fakedb

import (
	"fmt"
	"strconv"
	"strings"
)

// The evaluator executes parsed statements against a memDB. All values are
// raw byte strings; rows are []string. Set semantics (UNION, EXCEPT,
// DISTINCT, recursive-CTE convergence) dedupe on the full row with a
// NUL-safe length-prefixed key, so hostile values cannot alias one another.
//
// Recursive CTEs are evaluated semi-naively with full-row dedup: the delta
// of each iteration feeds the next, and a row already derived is never
// re-derived. On cyclic data this terminates where a literal UNION ALL
// reading would not — the fixpoint the renderer's final SELECT DISTINCT
// asks for. Uncorrelated subqueries (FROM subselects, IN/EXISTS bodies) are
// memoized per statement unless they reference a CTE still being iterated.

type table struct {
	cols []string
	rows [][]string
}

func (t *table) colIndex(name string) int {
	for i, c := range t.cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// rowKey is a collision-free encoding of a row: length-prefixed fields, so
// embedded NULs or separators in values cannot alias two distinct rows.
func rowKey(r []string) string {
	var b strings.Builder
	for _, v := range r {
		b.WriteString(strconv.Itoa(len(v)))
		b.WriteByte(':')
		b.WriteString(v)
	}
	return b.String()
}

func dedupe(rows [][]string) [][]string {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		k := rowKey(r)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// joined is the intermediate result of a FROM clause: the concatenation of
// the participating sources' columns, with per-source alias scoping.
type joined struct {
	srcs []jsrc
	rows [][]string
}

type jsrc struct {
	alias string
	cols  []string
	off   int
}

func (j *joined) width() int {
	if len(j.srcs) == 0 {
		return 0
	}
	last := j.srcs[len(j.srcs)-1]
	return last.off + len(last.cols)
}

// resolve finds the row index of alias.col; alias "" matches any source
// holding the column (ambiguity is an error).
func (j *joined) resolve(alias, col string) (int, bool, error) {
	found, n := -1, 0
	for _, s := range j.srcs {
		if alias != "" && !strings.EqualFold(s.alias, alias) {
			continue
		}
		for i, c := range s.cols {
			if strings.EqualFold(c, col) {
				found = s.off + i
				n++
				break
			}
		}
	}
	if n > 1 {
		return 0, false, fmt.Errorf("fakesql: ambiguous column %s", col)
	}
	return found, n == 1, nil
}

// rowEnv chains the rows of enclosing selects for correlated subqueries.
type rowEnv struct {
	parent *rowEnv
	j      *joined
	row    []string
}

type evaluator struct {
	db       *memDB
	args     []string
	recLimit int // max recursive-CTE iterations, 0 = unbounded
	ctes     map[string]*table
	iter     map[string]bool // CTE names currently being iterated (not memoizable)
	memo     map[any]*table
	exists   map[any]*existsIdx
	inSets   map[*condIn]inSetEntry
}

func newEvaluator(db *memDB, args []string, recLimit int) *evaluator {
	return &evaluator{
		db:       db,
		args:     args,
		recLimit: recLimit,
		ctes:     map[string]*table{},
		iter:     map[string]bool{},
		memo:     map[any]*table{},
		exists:   map[any]*existsIdx{},
	}
}

// lookup resolves a FROM table name: CTE bindings shadow stored tables.
func (ev *evaluator) lookup(name string) (*table, error) {
	if t, ok := ev.ctes[strings.ToLower(name)]; ok {
		return t, nil
	}
	if t, ok := ev.db.tables[strings.ToLower(name)]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("fakesql: no such table %q", name)
}

func (ev *evaluator) evalQuery(q queryNode, outer *rowEnv) (*table, error) {
	switch q := q.(type) {
	case *compoundNode:
		return ev.evalCompound(q, outer)
	case *withNode:
		return ev.evalWith(q, outer)
	}
	return nil, fmt.Errorf("fakesql: unknown query node %T", q)
}

func (ev *evaluator) evalCompound(c *compoundNode, outer *rowEnv) (*table, error) {
	acc, err := ev.evalSelect(c.parts[0], outer)
	if err != nil {
		return nil, err
	}
	rows := acc.rows
	for i, op := range c.ops {
		next, err := ev.evalSelect(c.parts[i+1], outer)
		if err != nil {
			return nil, err
		}
		if len(next.cols) != len(acc.cols) {
			return nil, fmt.Errorf("fakesql: set operation over different column counts (%d vs %d)", len(acc.cols), len(next.cols))
		}
		switch op {
		case "UNION ALL":
			rows = append(rows, next.rows...)
		case "UNION":
			rows = dedupe(append(rows, next.rows...))
		case "EXCEPT":
			drop := make(map[string]bool, len(next.rows))
			for _, r := range next.rows {
				drop[rowKey(r)] = true
			}
			var kept [][]string
			for _, r := range dedupe(rows) {
				if !drop[rowKey(r)] {
					kept = append(kept, r)
				}
			}
			rows = kept
		}
	}
	return &table{cols: acc.cols, rows: rows}, nil
}

func (ev *evaluator) evalWith(w *withNode, outer *rowEnv) (*table, error) {
	name := strings.ToLower(w.name)
	if _, shadow := ev.ctes[name]; shadow {
		return nil, fmt.Errorf("fakesql: nested redefinition of CTE %q", w.name)
	}
	var body *table
	if w.recursive {
		t, err := ev.evalRecursive(w, outer)
		if err != nil {
			return nil, err
		}
		body = t
	} else {
		t, err := ev.evalCompound(w.body, outer)
		if err != nil {
			return nil, err
		}
		body = t
	}
	if len(w.cols) > 0 {
		if len(w.cols) != len(body.cols) {
			return nil, fmt.Errorf("fakesql: CTE %q declares %d columns, body yields %d", w.name, len(w.cols), len(body.cols))
		}
		body = &table{cols: w.cols, rows: body.rows}
	}
	ev.ctes[name] = body
	defer delete(ev.ctes, name)
	return ev.evalQuery(w.outer, outer)
}

// evalRecursive runs the semi-naive fixpoint of a recursive CTE. Body parts
// that do not reference the CTE are the seed; the rest re-run per iteration
// against the previous delta only.
func (ev *evaluator) evalRecursive(w *withNode, outer *rowEnv) (*table, error) {
	name := strings.ToLower(w.name)
	var seeds, recs []*selectNode
	for i, part := range w.body.parts {
		if i > 0 && !strings.HasPrefix(w.body.ops[i-1], "UNION") {
			return nil, fmt.Errorf("fakesql: recursive CTE %q combines parts with %s", w.name, w.body.ops[i-1])
		}
		if selectRefsTable(part, name) {
			recs = append(recs, part)
		} else {
			seeds = append(seeds, part)
		}
	}
	if len(recs) == 0 {
		return ev.evalCompound(w.body, outer)
	}
	cols := w.cols
	seen := map[string]bool{}
	var acc, delta [][]string
	for _, s := range seeds {
		t, err := ev.evalSelect(s, outer)
		if err != nil {
			return nil, err
		}
		if cols == nil {
			cols = t.cols
		}
		if len(t.cols) != len(cols) {
			return nil, fmt.Errorf("fakesql: recursive CTE %q seed column mismatch", w.name)
		}
		for _, r := range t.rows {
			k := rowKey(r)
			if !seen[k] {
				seen[k] = true
				acc = append(acc, r)
				delta = append(delta, r)
			}
		}
	}
	ev.iter[name] = true
	defer delete(ev.iter, name)
	iters := 0
	for len(delta) > 0 {
		if iters++; ev.recLimit > 0 && iters > ev.recLimit {
			delete(ev.ctes, name)
			return nil, fmt.Errorf("fakesql: recursive CTE %q exceeded MAX_RECURSIVE_ITERATIONS = %d", w.name, ev.recLimit)
		}
		ev.ctes[name] = &table{cols: cols, rows: delta}
		var fresh [][]string
		for _, rsel := range recs {
			t, err := ev.evalSelect(rsel, outer)
			if err != nil {
				delete(ev.ctes, name)
				return nil, err
			}
			if len(t.cols) != len(cols) {
				delete(ev.ctes, name)
				return nil, fmt.Errorf("fakesql: recursive CTE %q step column mismatch", w.name)
			}
			for _, r := range t.rows {
				k := rowKey(r)
				if !seen[k] {
					seen[k] = true
					fresh = append(fresh, r)
				}
			}
		}
		acc = append(acc, fresh...)
		delta = fresh
	}
	delete(ev.ctes, name)
	return &table{cols: cols, rows: acc}, nil
}

// selectRefsTable reports whether the select's FROM (recursively through
// subqueries and subquery conditions) references the named table.
func selectRefsTable(s *selectNode, name string) bool {
	for _, f := range s.from {
		if f.sub == nil && strings.EqualFold(f.table, name) {
			return true
		}
		if f.sub != nil && queryRefsTable(f.sub, name) {
			return true
		}
		if condsRefTable(f.on, name) {
			return true
		}
	}
	return condsRefTable(s.where, name)
}

func condsRefTable(conds []condNode, name string) bool {
	for _, c := range conds {
		switch c := c.(type) {
		case *condIn:
			if queryRefsTable(c.q, name) {
				return true
			}
		case *condExists:
			if queryRefsTable(c.q, name) {
				return true
			}
		}
	}
	return false
}

func queryRefsTable(q queryNode, name string) bool {
	switch q := q.(type) {
	case *compoundNode:
		for _, p := range q.parts {
			if selectRefsTable(p, name) {
				return true
			}
		}
	case *withNode:
		if queryRefsTable(q.body, name) || queryRefsTable(q.outer, name) {
			return true
		}
	}
	return false
}

// refsIteratingCTE reports whether a subquery touches any CTE currently
// being iterated — such subqueries must not be memoized.
func (ev *evaluator) refsIteratingCTE(q queryNode) bool {
	for name := range ev.iter {
		if queryRefsTable(q, name) {
			return true
		}
	}
	return false
}

// subTable evaluates an uncorrelated subquery with per-statement
// memoization.
func (ev *evaluator) subTable(q queryNode, outer *rowEnv) (*table, error) {
	if outer == nil && !ev.refsIteratingCTE(q) {
		if t, ok := ev.memo[q]; ok {
			return t, nil
		}
		t, err := ev.evalQuery(q, nil)
		if err != nil {
			return nil, err
		}
		ev.memo[q] = t
		return t, nil
	}
	return ev.evalQuery(q, outer)
}

func (ev *evaluator) evalSelect(s *selectNode, outer *rowEnv) (*table, error) {
	j, err := ev.evalFrom(s, outer)
	if err != nil {
		return nil, err
	}
	// Project.
	cols := make([]string, len(s.items))
	for i, it := range s.items {
		switch {
		case it.alias != "":
			cols[i] = it.alias
		default:
			if c, ok := it.e.(*colRef); ok {
				cols[i] = c.col
			} else {
				cols[i] = fmt.Sprintf("_col%d", i+1)
			}
		}
	}
	out := make([][]string, 0, len(j.rows))
	for _, row := range j.rows {
		env := &rowEnv{parent: outer, j: j, row: row}
		pr := make([]string, len(s.items))
		for i, it := range s.items {
			v, err := ev.evalExpr(it.e, env)
			if err != nil {
				return nil, err
			}
			pr[i] = v
		}
		out = append(out, pr)
	}
	if s.distinct {
		out = dedupe(out)
	}
	return &table{cols: cols, rows: out}, nil
}

// evalFrom materializes the FROM clause with every WHERE / ON conjunct
// applied: single-source conjuncts filter before joining, equality
// conjuncts between two sources drive hash joins, and the rest (EXISTS, IN,
// cross-source equalities the joins didn't consume) filter the final rows.
func (ev *evaluator) evalFrom(s *selectNode, outer *rowEnv) (*joined, error) {
	// No FROM: one empty row, so SELECT <literals> yields a single row.
	if len(s.from) == 0 {
		j := &joined{rows: [][]string{{}}}
		return j, ev.filterRows(j, s.where, outer)
	}
	var conds []condNode
	conds = append(conds, s.where...)
	for _, f := range s.from {
		conds = append(conds, f.on...)
	}
	var cur *joined
	for _, f := range s.from {
		src, err := ev.fromSource(f, outer)
		if err != nil {
			return nil, err
		}
		// Filter the new source alone with its single-alias conjuncts.
		solo := &joined{srcs: []jsrc{{alias: f.alias, cols: src.cols}}, rows: src.rows}
		var rest []condNode
		for _, c := range conds {
			ok, err := ev.condLocalTo(c, solo)
			if err != nil {
				return nil, err
			}
			if ok {
				if err := ev.filterRows(solo, []condNode{c}, outer); err != nil {
					return nil, err
				}
			} else {
				rest = append(rest, c)
			}
		}
		conds = rest
		if cur == nil {
			cur = solo
			continue
		}
		cur, conds, err = ev.join(cur, solo, conds, outer)
		if err != nil {
			return nil, err
		}
	}
	return cur, ev.filterRows(cur, conds, outer)
}

func (ev *evaluator) fromSource(f fromItem, outer *rowEnv) (*table, error) {
	if f.sub != nil {
		return ev.subTable(f.sub, correlatedOnly(f.sub, outer))
	}
	return ev.lookup(f.table)
}

// correlatedOnly passes the outer environment through to a subquery only
// when it could actually resolve something there; renderer subqueries are
// uncorrelated in FROM position, which keeps them memoizable.
func correlatedOnly(queryNode, *rowEnv) *rowEnv { return nil }

// condLocalTo reports whether every column the condition references
// resolves within j (EXISTS/IN bodies excluded — their subqueries are
// handled at filter time).
func (ev *evaluator) condLocalTo(c condNode, j *joined) (bool, error) {
	switch c := c.(type) {
	case *condEq:
		return exprsLocalTo(j, c.l, c.r), nil
	case *condIn:
		return exprsLocalTo(j, c.e), nil
	case *condExists:
		// EXISTS correlates with enclosing rows; never push it to one side.
		return false, nil
	}
	return false, fmt.Errorf("fakesql: unknown condition %T", c)
}

func exprsLocalTo(j *joined, exprs ...exprNode) bool {
	for _, e := range exprs {
		for _, ref := range exprRefs(e) {
			idx, ok, err := j.resolve(ref.alias, ref.col)
			if err != nil || !ok || idx < 0 {
				return false
			}
		}
	}
	return true
}

func exprRefs(e exprNode) []*colRef {
	switch e := e.(type) {
	case *colRef:
		return []*colRef{e}
	case *concatExpr:
		var out []*colRef
		for _, p := range e.parts {
			out = append(out, exprRefs(p)...)
		}
		return out
	case *castExpr:
		return exprRefs(e.e)
	}
	return nil
}

// join combines cur and next, consuming one equality conjunct as a hash-join
// key when one side resolves in cur and the other in next; without such a
// conjunct it falls back to the cross product (filtered later).
func (ev *evaluator) join(cur, next *joined, conds []condNode, outer *rowEnv) (*joined, []condNode, error) {
	var leftKey, rightKey exprNode
	used := -1
	for i, c := range conds {
		eq, ok := c.(*condEq)
		if !ok {
			continue
		}
		switch {
		case exprsLocalTo(cur, eq.l) && exprsLocalTo(next, eq.r):
			leftKey, rightKey, used = eq.l, eq.r, i
		case exprsLocalTo(next, eq.l) && exprsLocalTo(cur, eq.r):
			leftKey, rightKey, used = eq.r, eq.l, i
		}
		if used >= 0 {
			break
		}
	}
	out := &joined{srcs: append(append([]jsrc{}, cur.srcs...), jsrc{
		alias: next.srcs[0].alias,
		cols:  next.srcs[0].cols,
		off:   cur.width(),
	})}
	if used >= 0 {
		conds = append(append([]condNode{}, conds[:used]...), conds[used+1:]...)
		idx := make(map[string][][]string, len(next.rows))
		for _, r := range next.rows {
			env := &rowEnv{parent: outer, j: next, row: r}
			k, err := ev.evalExpr(rightKey, env)
			if err != nil {
				return nil, nil, err
			}
			idx[k] = append(idx[k], r)
		}
		for _, l := range cur.rows {
			env := &rowEnv{parent: outer, j: cur, row: l}
			k, err := ev.evalExpr(leftKey, env)
			if err != nil {
				return nil, nil, err
			}
			for _, r := range idx[k] {
				out.rows = append(out.rows, append(append([]string{}, l...), r...))
			}
		}
		return out, conds, nil
	}
	for _, l := range cur.rows {
		for _, r := range next.rows {
			out.rows = append(out.rows, append(append([]string{}, l...), r...))
		}
	}
	return out, conds, nil
}

// filterRows applies conjuncts to j in place.
func (ev *evaluator) filterRows(j *joined, conds []condNode, outer *rowEnv) error {
	if len(conds) == 0 {
		return nil
	}
	kept := j.rows[:0:0]
	for _, row := range j.rows {
		env := &rowEnv{parent: outer, j: j, row: row}
		ok := true
		for _, c := range conds {
			v, err := ev.evalCond(c, env)
			if err != nil {
				return err
			}
			if !v {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, row)
		}
	}
	j.rows = kept
	return nil
}

func (ev *evaluator) evalCond(c condNode, env *rowEnv) (bool, error) {
	switch c := c.(type) {
	case *condEq:
		l, err := ev.evalExpr(c.l, env)
		if err != nil {
			return false, err
		}
		r, err := ev.evalExpr(c.r, env)
		if err != nil {
			return false, err
		}
		return l == r, nil
	case *condIn:
		t, err := ev.subTable(c.q, nil)
		if err != nil {
			return false, err
		}
		if len(t.cols) != 1 {
			return false, fmt.Errorf("fakesql: IN subquery yields %d columns", len(t.cols))
		}
		v, err := ev.evalExpr(c.e, env)
		if err != nil {
			return false, err
		}
		set := ev.inSet(c, t)
		return set[v], nil
	case *condExists:
		hit, err := ev.evalExists(c, env)
		if err != nil {
			return false, err
		}
		return hit != c.neg, nil
	}
	return false, fmt.Errorf("fakesql: unknown condition %T", c)
}

// inSet caches the value set of an IN subquery, keyed by the condition and
// the materialized table it was built from (the table pointer changes when
// a recursive iteration re-evaluates the subquery).
func (ev *evaluator) inSet(c *condIn, t *table) map[string]bool {
	if s, ok := ev.inSets[c]; ok && s.src == t {
		return s.set
	}
	set := make(map[string]bool, len(t.rows))
	for _, r := range t.rows {
		set[r[0]] = true
	}
	if ev.inSets == nil {
		ev.inSets = map[*condIn]inSetEntry{}
	}
	ev.inSets[c] = inSetEntry{src: t, set: set}
	return set
}

type inSetEntry struct {
	src *table
	set map[string]bool
}

// existsIdx is the prepared form of an EXISTS condition: the subquery's
// rows with all uncorrelated conjuncts applied, plus a value set over the
// correlated equality's inner side when the correlation has that shape.
type existsIdx struct {
	innerJ    *joined
	corr      []corrEq
	set       map[string]bool // keyed by rowKey of the outer-side values
	fallbackR [][]string
}

type corrEq struct {
	inner exprNode // resolves in the subquery's FROM
	outer exprNode // resolves only in enclosing rows
}

// evalExists evaluates EXISTS (sub) for the current row. The subquery is
// evaluated once: conjuncts referencing enclosing rows are split out, the
// remainder filters the materialized inner rows, and equality correlations
// become a hash-set probe per outer row.
func (ev *evaluator) evalExists(c *condExists, env *rowEnv) (bool, error) {
	idx, err := ev.existsIndex(c, env)
	if err != nil {
		return false, err
	}
	if idx.set != nil {
		key := make([]string, len(idx.corr))
		for i, ce := range idx.corr {
			v, err := ev.evalExpr(ce.outer, env)
			if err != nil {
				return false, err
			}
			key[i] = v
		}
		return idx.set[rowKey(key)], nil
	}
	// No equality correlation (or an unsupported shape): scan the
	// materialized rows, evaluating the leftover conjuncts with the inner
	// row chained onto the enclosing environment.
	for _, r := range idx.fallbackR {
		inner := &rowEnv{parent: env, j: idx.innerJ, row: r}
		ok := true
		for _, ce := range idx.corr {
			l, err := ev.evalExpr(ce.inner, inner)
			if err != nil {
				return false, err
			}
			rr, err := ev.evalExpr(ce.outer, inner)
			if err != nil {
				return false, err
			}
			if l != rr {
				ok = false
				break
			}
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func (ev *evaluator) existsIndex(c *condExists, env *rowEnv) (*existsIdx, error) {
	if !ev.refsIteratingCTE(c.q) {
		if idx, ok := ev.exists[c]; ok {
			return idx, nil
		}
	}
	comp, ok := c.q.(*compoundNode)
	if !ok || len(comp.parts) != 1 {
		// General subquery: materialize it fully per statement and treat a
		// non-empty result as a hit (no correlation possible through a
		// compound in the renderer's grammar).
		t, err := ev.subTable(c.q, nil)
		if err != nil {
			return nil, err
		}
		idx := &existsIdx{fallbackR: t.rows}
		ev.exists[c] = idx
		return idx, nil
	}
	sub := comp.parts[0]
	// Evaluate the subquery's FROM with no WHERE, then split conjuncts.
	stripped := &selectNode{items: sub.items, from: sub.from, distinct: false}
	j, err := ev.evalFrom(stripped, nil)
	if err != nil {
		return nil, err
	}
	var local, correlated []condNode
	for _, cd := range sub.where {
		ok, err := ev.condLocalTo(cd, j)
		if err != nil {
			return nil, err
		}
		if ok {
			local = append(local, cd)
		} else {
			correlated = append(correlated, cd)
		}
	}
	if err := ev.filterRows(j, local, nil); err != nil {
		return nil, err
	}
	idx := &existsIdx{innerJ: j}
	// Equality correlations inner-vs-outer become a set probe.
	allEq := true
	for _, cd := range correlated {
		eq, isEq := cd.(*condEq)
		if !isEq {
			allEq = false
			break
		}
		switch {
		case exprsLocalTo(j, eq.l) && !refsAnyLocal(j, eq.r):
			idx.corr = append(idx.corr, corrEq{inner: eq.l, outer: eq.r})
		case exprsLocalTo(j, eq.r) && !refsAnyLocal(j, eq.l):
			idx.corr = append(idx.corr, corrEq{inner: eq.r, outer: eq.l})
		default:
			allEq = false
		}
		if !allEq {
			break
		}
	}
	if allEq && len(idx.corr) > 0 {
		idx.set = make(map[string]bool, len(j.rows))
		for _, r := range j.rows {
			inner := &rowEnv{j: j, row: r}
			key := make([]string, len(idx.corr))
			for i, ce := range idx.corr {
				v, err := ev.evalExpr(ce.inner, inner)
				if err != nil {
					return nil, err
				}
				key[i] = v
			}
			idx.set[rowKey(key)] = true
		}
	} else {
		// Fallback: keep rows and re-split conjuncts per probe.
		idx.corr = nil
		for _, cd := range correlated {
			eq, isEq := cd.(*condEq)
			if !isEq {
				return nil, fmt.Errorf("fakesql: unsupported correlated EXISTS condition %T", cd)
			}
			idx.corr = append(idx.corr, corrEq{inner: eq.l, outer: eq.r})
		}
		idx.fallbackR = j.rows
	}
	if !ev.refsIteratingCTE(c.q) {
		ev.exists[c] = idx
	}
	return idx, nil
}

// refsAnyLocal reports whether the expression references any column
// resolvable in j.
func refsAnyLocal(j *joined, e exprNode) bool {
	for _, ref := range exprRefs(e) {
		if idx, ok, _ := j.resolve(ref.alias, ref.col); ok && idx >= 0 {
			return true
		}
	}
	return false
}

func (ev *evaluator) evalExpr(e exprNode, env *rowEnv) (string, error) {
	switch e := e.(type) {
	case *litExpr:
		return e.s, nil
	case *numExpr:
		return e.s, nil
	case *paramExpr:
		if e.idx >= len(ev.args) {
			return "", fmt.Errorf("fakesql: missing bind argument %d", e.idx+1)
		}
		return ev.args[e.idx], nil
	case *castExpr:
		// Everything is a string already.
		return ev.evalExpr(e.e, env)
	case *concatExpr:
		var b strings.Builder
		for _, p := range e.parts {
			v, err := ev.evalExpr(p, env)
			if err != nil {
				return "", err
			}
			b.WriteString(v)
		}
		return b.String(), nil
	case *colRef:
		for scope := env; scope != nil; scope = scope.parent {
			if scope.j == nil {
				continue
			}
			idx, ok, err := scope.j.resolve(e.alias, e.col)
			if err != nil {
				return "", err
			}
			if ok {
				return scope.row[idx], nil
			}
		}
		return "", fmt.Errorf("fakesql: unknown column %s", refString(e))
	}
	return "", fmt.Errorf("fakesql: unknown expression %T", e)
}

func refString(c *colRef) string {
	if c.alias != "" {
		return c.alias + "." + c.col
	}
	return c.col
}
