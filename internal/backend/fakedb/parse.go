package fakedb

import (
	"fmt"
	"strings"
)

// The lexer and parser cover exactly the SQL the ra renderer emits plus the
// DDL/INSERT statements ra's emission helpers produce: CREATE TABLE,
// CREATE TEMPORARY TABLE … AS, DROP TABLE [IF EXISTS], parameterized
// INSERT … VALUES, and SELECT with DISTINCT, subqueries, JOIN … ON, comma
// joins, WHERE conjunctions of =, IN (subquery), [NOT] EXISTS, the string
// concatenation operator ||, CAST, UNION [ALL], EXCEPT, and
// WITH [RECURSIVE] … AS (…) queries. Anything else is a parse error —
// deliberately, so the differential suite catches renderer drift instead of
// silently misreading it.

type tokKind int

const (
	tkEOF tokKind = iota
	tkIdent
	tkString // contents already unescaped ('' -> ')
	tkNumber
	tkPunct // ( ) , . = ? and the two-byte ||
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == ';':
			// Statement terminator; callers send one statement per call.
			l.pos++
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			l.toks = append(l.toks, token{tkNumber, l.src[start:l.pos], start})
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			start := l.pos
			for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{tkIdent, l.src[start:l.pos], start})
		case c == '|':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '|' {
				l.toks = append(l.toks, token{tkPunct, "||", l.pos})
				l.pos += 2
			} else {
				return nil, fmt.Errorf("fakesql: stray '|' at %d", l.pos)
			}
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '=' || c == '?':
			l.toks = append(l.toks, token{tkPunct, string(c), l.pos})
			l.pos++
		default:
			return nil, fmt.Errorf("fakesql: unexpected byte %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{tkEOF, "", l.pos})
	return l.toks, nil
}

// lexString scans a single-quoted literal. The content is raw bytes — NULs,
// newlines and non-UTF8 sequences included — with a doubled quote decoding to a
// single quote, matching ra's escapeSQL.
func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{tkString, b.String(), start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("fakesql: unterminated string literal at %d", start)
}

func isIdentByte(c byte) bool {
	return c == '_' || (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// ---- AST ----

type stmtNode interface{ isStmt() }

type createTable struct {
	name string
	cols []string
}

type createTableAs struct {
	name  string
	query queryNode
	temp  bool
}

type dropTable struct {
	name     string
	ifExists bool
}

type insertStmt struct {
	table  string
	cols   []string
	rows   [][]exprNode
	params int // number of ? placeholders
}

type queryStmt struct{ query queryNode }

func (*createTable) isStmt()   {}
func (*createTableAs) isStmt() {}
func (*dropTable) isStmt()     {}
func (*insertStmt) isStmt()    {}
func (*queryStmt) isStmt()     {}

type queryNode interface{ isQuery() }

// withNode is WITH [RECURSIVE] name (cols) AS ( body ) outer.
type withNode struct {
	recursive bool
	name      string
	cols      []string
	body      *compoundNode
	outer     queryNode
}

// compoundNode is select (op select)* with ops "UNION", "UNION ALL",
// "EXCEPT" — equal precedence, left-associative, as in standard SQL.
type compoundNode struct {
	parts []*selectNode
	ops   []string // len(parts)-1
}

func (*withNode) isQuery()     {}
func (*compoundNode) isQuery() {}

type selectNode struct {
	distinct bool
	items    []selItem
	from     []fromItem
	where    []condNode // conjuncts
}

type selItem struct {
	e     exprNode
	alias string
}

type fromItem struct {
	table string // base table / CTE reference when sub == nil
	sub   queryNode
	alias string
	on    []condNode // JOIN … ON conjuncts (empty for the first item / comma joins)
}

type condNode interface{ isCond() }

type condEq struct{ l, r exprNode }

type condIn struct {
	e exprNode
	q queryNode
}

type condExists struct {
	q   queryNode
	neg bool
}

func (*condEq) isCond()     {}
func (*condIn) isCond()     {}
func (*condExists) isCond() {}

type exprNode interface{ isExpr() }

type colRef struct{ alias, col string }

type litExpr struct{ s string }

type numExpr struct{ s string }

type paramExpr struct{ idx int }

type concatExpr struct{ parts []exprNode }

type castExpr struct{ e exprNode }

func (*colRef) isExpr()     {}
func (*litExpr) isExpr()    {}
func (*numExpr) isExpr()    {}
func (*paramExpr) isExpr()  {}
func (*concatExpr) isExpr() {}
func (*castExpr) isExpr()   {}

// ---- parser ----

type parser struct {
	toks   []token
	pos    int
	params int
}

func parseStatement(src string) (stmtNode, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input after statement")
	}
	return st, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tkEOF }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("fakesql: %s (near %q at %d)", fmt.Sprintf(format, args...), t.text, t.pos)
}

// isKw reports whether the current token is the given keyword
// (case-insensitive), without consuming it.
func (p *parser) isKw(kw string) bool {
	t := p.cur()
	return t.kind == tkIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) eatKw(kw string) bool {
	if p.isKw(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.eatKw(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *parser) eatPunct(s string) bool {
	t := p.cur()
	if t.kind == tkPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.eatPunct(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tkIdent {
		return "", p.errf("expected identifier")
	}
	p.pos++
	return t.text, nil
}

func (p *parser) statement() (stmtNode, error) {
	switch {
	case p.isKw("CREATE"):
		return p.createStmt()
	case p.isKw("DROP"):
		return p.dropStmt()
	case p.isKw("INSERT"):
		return p.insertStmt()
	case p.isKw("SELECT"), p.isKw("WITH"):
		q, err := p.query()
		if err != nil {
			return nil, err
		}
		return &queryStmt{query: q}, nil
	}
	return nil, p.errf("unsupported statement")
}

func (p *parser) createStmt() (stmtNode, error) {
	p.pos++ // CREATE
	temp := p.eatKw("TEMPORARY") || p.eatKw("TEMP")
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.eatKw("AS") {
		q, err := p.query()
		if err != nil {
			return nil, err
		}
		return &createTableAs{name: name, query: q, temp: temp}, nil
	}
	// Column-definition form: name (col TYPE, …); types are parsed and
	// discarded — everything is a string.
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		if err := p.skipType(); err != nil {
			return nil, err
		}
		if p.eatPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &createTable{name: name, cols: cols}, nil
}

// skipType consumes a column type: IDENT [( NUMBER )].
func (p *parser) skipType() error {
	if _, err := p.ident(); err != nil {
		return err
	}
	if p.eatPunct("(") {
		if p.cur().kind != tkNumber {
			return p.errf("expected type length")
		}
		p.pos++
		if err := p.expectPunct(")"); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) dropStmt() (stmtNode, error) {
	p.pos++ // DROP
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	ifExists := false
	if p.eatKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &dropTable{name: name, ifExists: ifExists}, nil
}

func (p *parser) insertStmt() (stmtNode, error) {
	p.pos++ // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.eatPunct("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, col)
			if p.eatPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]exprNode
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []exprNode
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.eatPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.eatPunct(",") {
			continue
		}
		break
	}
	return &insertStmt{table: table, cols: cols, rows: rows, params: p.params}, nil
}

func (p *parser) query() (queryNode, error) {
	if p.eatKw("WITH") {
		recursive := p.eatKw("RECURSIVE")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		var cols []string
		if p.eatPunct("(") {
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				cols = append(cols, col)
				if p.eatPunct(",") {
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		body, err := p.compound()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		outer, err := p.query()
		if err != nil {
			return nil, err
		}
		return &withNode{recursive: recursive, name: name, cols: cols, body: body, outer: outer}, nil
	}
	return p.compound()
}

func (p *parser) compound() (*compoundNode, error) {
	first, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	c := &compoundNode{parts: []*selectNode{first}}
	for {
		var op string
		switch {
		case p.isKw("UNION"):
			p.pos++
			op = "UNION"
			if p.eatKw("ALL") {
				op = "UNION ALL"
			}
		case p.isKw("EXCEPT"):
			p.pos++
			op = "EXCEPT"
		default:
			return c, nil
		}
		next, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		c.parts = append(c.parts, next)
		c.ops = append(c.ops, op)
	}
}

func (p *parser) selectStmt() (*selectNode, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &selectNode{distinct: p.eatKw("DISTINCT")}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		it := selItem{e: e}
		if p.eatKw("AS") {
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			it.alias = a
		}
		s.items = append(s.items, it)
		if p.eatPunct(",") {
			continue
		}
		break
	}
	if p.eatKw("FROM") {
		item, err := p.fromItem()
		if err != nil {
			return nil, err
		}
		s.from = append(s.from, item)
		for {
			if p.eatPunct(",") {
				item, err := p.fromItem()
				if err != nil {
					return nil, err
				}
				s.from = append(s.from, item)
				continue
			}
			if p.eatKw("JOIN") {
				item, err := p.fromItem()
				if err != nil {
					return nil, err
				}
				if err := p.expectKw("ON"); err != nil {
					return nil, err
				}
				conds, err := p.conjuncts()
				if err != nil {
					return nil, err
				}
				item.on = conds
				s.from = append(s.from, item)
				continue
			}
			break
		}
	}
	if p.eatKw("WHERE") {
		conds, err := p.conjuncts()
		if err != nil {
			return nil, err
		}
		s.where = conds
	}
	return s, nil
}

func (p *parser) fromItem() (fromItem, error) {
	if p.eatPunct("(") {
		q, err := p.query()
		if err != nil {
			return fromItem{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return fromItem{}, err
		}
		alias, err := p.ident()
		if err != nil {
			return fromItem{}, fmt.Errorf("fakesql: FROM subquery requires an alias: %w", err)
		}
		return fromItem{sub: q, alias: alias}, nil
	}
	name, err := p.ident()
	if err != nil {
		return fromItem{}, err
	}
	it := fromItem{table: name, alias: name}
	// Optional alias: a following identifier that is not a clause keyword.
	if t := p.cur(); t.kind == tkIdent && !isClauseKw(t.text) {
		it.alias = t.text
		p.pos++
	}
	return it, nil
}

func isClauseKw(s string) bool {
	switch strings.ToUpper(s) {
	case "WHERE", "JOIN", "ON", "UNION", "EXCEPT", "ALL", "AS", "FROM", "AND", "IN", "EXISTS", "NOT", "SELECT", "DISTINCT", "WITH", "RECURSIVE", "START", "CONNECT":
		return true
	}
	return false
}

func (p *parser) conjuncts() ([]condNode, error) {
	var out []condNode
	for {
		c, err := p.cond()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		if p.eatKw("AND") {
			continue
		}
		return out, nil
	}
}

func (p *parser) cond() (condNode, error) {
	if p.eatKw("EXISTS") {
		q, err := p.parenQuery()
		if err != nil {
			return nil, err
		}
		return &condExists{q: q}, nil
	}
	if p.eatKw("NOT") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		q, err := p.parenQuery()
		if err != nil {
			return nil, err
		}
		return &condExists{q: q, neg: true}, nil
	}
	l, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.eatKw("IN") {
		q, err := p.parenQuery()
		if err != nil {
			return nil, err
		}
		return &condIn{e: l, q: q}, nil
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	r, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &condEq{l: l, r: r}, nil
}

func (p *parser) parenQuery() (queryNode, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) expr() (exprNode, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tkPunct && p.cur().text == "||" {
		parts := []exprNode{e}
		for p.eatPunct("||") {
			next, err := p.primary()
			if err != nil {
				return nil, err
			}
			parts = append(parts, next)
		}
		return &concatExpr{parts: parts}, nil
	}
	return e, nil
}

func (p *parser) primary() (exprNode, error) {
	t := p.cur()
	switch t.kind {
	case tkString:
		p.pos++
		return &litExpr{s: t.text}, nil
	case tkNumber:
		p.pos++
		return &numExpr{s: t.text}, nil
	case tkPunct:
		if t.text == "?" {
			p.pos++
			e := &paramExpr{idx: p.params}
			p.params++
			return e, nil
		}
	case tkIdent:
		if strings.EqualFold(t.text, "CAST") {
			p.pos++
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			inner, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AS"); err != nil {
				return nil, err
			}
			if err := p.skipType(); err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &castExpr{e: inner}, nil
		}
		p.pos++
		if p.eatPunct(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &colRef{alias: t.text, col: col}, nil
		}
		return &colRef{col: t.text}, nil
	}
	return nil, p.errf("expected expression")
}
