// Package backend defines the storage-neutral execution interface of the
// query service: a Backend owns one shredded document image and executes
// translated relational programs against it. Two implementations ship with
// the repository — the in-process rdb engine (Local, the default) and a
// database/sql backend (sqlbe) that loads the (F, T, V) relations into real
// SQL tables and runs the rendered WITH RECURSIVE text — and the engine,
// server and tools select between them without knowing which is which.
//
// The contract (see DESIGN.md "Backends"):
//
//   - Load installs a complete document image and advances the epoch.
//     Loads are not required to be atomic with respect to concurrent
//     snapshots; callers serialize Load against query traffic or use an
//     implementation documented as snapshot-isolated.
//   - Snapshot pins an immutable view: every Execute through one Snapshot
//     sees a single epoch's data, and Epoch identifies it. Snapshots must
//     remain valid after later Loads (copy-on-write or equivalent) or
//     document that they do not.
//   - Execute honors context cancellation and the typed resource limits of
//     internal/obs: exceeding ExecOptions.Limits returns a *obs.LimitError,
//     and the answer IDs are ascending with the virtual document root
//     (ID 0) removed.
package backend

import (
	"context"
	"errors"

	"xpath2sql/internal/obs"
	"xpath2sql/internal/ra"
	"xpath2sql/internal/rdb"
)

// Errors common to all backends.
var (
	// ErrClosed reports use of a closed Backend or Snapshot.
	ErrClosed = errors.New("backend: closed")
	// ErrNoData reports a Snapshot or Execute before any Load.
	ErrNoData = errors.New("backend: no document loaded")
)

// ExecOptions carries the per-run execution configuration every backend
// must honor.
type ExecOptions struct {
	// Workers requests intra-query parallelism (<= 1 is serial). Backends
	// without a parallel evaluator may ignore it.
	Workers int
	// Limits bounds the run; exceeding a bound returns *obs.LimitError.
	Limits obs.Limits
	// Trace, when non-nil, receives one obs.StmtEvent per executed
	// statement.
	Trace *obs.Trace
	// Intervals selects the physical path for descendant steps (see
	// rdb.IntervalMode); the zero value is IntervalAuto. Backends without an
	// interval kernel (e.g. the SQL backend) may ignore it.
	Intervals rdb.IntervalMode
}

// Result is one execution's answer: node IDs ascending (virtual root
// dropped) and the work statistics the backend can account for.
type Result struct {
	IDs   []int
	Stats rdb.Stats
}

// Snapshot is an immutable view of one loaded epoch.
type Snapshot interface {
	// Epoch identifies the document image this snapshot pins; it is
	// strictly increasing across Loads of one backend.
	Epoch() uint64
	// Execute runs a translated program against the snapshot.
	Execute(ctx context.Context, prog *ra.Program, opts ExecOptions) (*Result, error)
	// Close releases the snapshot.
	Close() error
}

// Backend owns a shredded document image and executes programs against it.
type Backend interface {
	// Name identifies the implementation ("rdb", "sql"), for logs and
	// reports.
	Name() string
	// Load installs a full document image, replacing any previous one and
	// advancing the epoch.
	Load(ctx context.Context, src *rdb.DB) error
	// Snapshot pins the current epoch for execution.
	Snapshot(ctx context.Context) (Snapshot, error)
	// Close releases the backend; subsequent calls return ErrClosed.
	Close() error
}
