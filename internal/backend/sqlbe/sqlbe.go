// Package sqlbe is the database/sql execution backend: it shreds the
// (F, T, V) edge relations into real SQL tables and runs the rendered
// WITH RECURSIVE statement sequence end-to-end — the paper's actual target
// deployment, where the translated query ships to an RDBMS.
//
// The package never imports a driver. Callers open their own *sql.DB (or
// pass a driver name and DSN to Open) after registering a driver in their
// main package; the in-repo hermetic driver internal/backend/fakedb serves
// tests and CI. Per the repository's layering rule, only cmd/ binaries and
// test files link drivers in.
//
// Execution pins one connection for a whole run: temporary tables are
// per-connection state on real engines, so the statement sequence must not
// hop across a pool. Each run renders with a unique temp-table prefix, so
// concurrent executions over one database never collide even on engines
// (like fakedb) whose temp tables share a namespace.
package sqlbe

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xpath2sql/internal/backend"
	"xpath2sql/internal/obs"
	"xpath2sql/internal/ra"
	"xpath2sql/internal/rdb"
)

// ErrExecDialect reports an attempt to execute a dialect this backend can
// only render, not run (Oracle's CONNECT BY form is print-only).
var ErrExecDialect = errors.New("sqlbe: only the DB2 / SQL'99 WITH RECURSIVE dialect is executable")

// Options configures the backend.
type Options struct {
	// Dialect of the rendered programs; must be ra.DialectDB2 (the
	// executable WITH RECURSIVE form). The zero value is DB2.
	Dialect ra.Dialect
	// NodesTable names the (ID, VAL) node catalog ("all_nodes" when empty).
	NodesTable string
	// InsertBatch is the number of rows per multi-row INSERT during Load
	// (default 200).
	InsertBatch int
}

func (o Options) withDefaults() Options {
	if o.NodesTable == "" {
		o.NodesTable = "all_nodes"
	}
	if o.InsertBatch <= 0 {
		o.InsertBatch = 200
	}
	return o
}

// Backend implements backend.Backend over a *sql.DB.
type Backend struct {
	db   *sql.DB
	opts Options

	mu     sync.Mutex
	epoch  uint64
	tables []string // tables created by the last Load, for the next Load's cleanup
	closed bool
	runSeq atomic.Uint64
}

// New wraps an already-open database handle. The handle is adopted: Close
// closes it.
func New(db *sql.DB, opts Options) (*Backend, error) {
	opts = opts.withDefaults()
	if !opts.Dialect.Valid() {
		return nil, fmt.Errorf("%w: Dialect(%d)", ra.ErrDialect, int(opts.Dialect))
	}
	if opts.Dialect != ra.DialectDB2 {
		return nil, fmt.Errorf("%w (got %s)", ErrExecDialect, opts.Dialect)
	}
	return &Backend{db: db, opts: opts}, nil
}

// Open connects via database/sql and wraps the handle. The driver must have
// been registered by the caller's main package.
func Open(ctx context.Context, driverName, dsn string, opts Options) (*Backend, error) {
	db, err := sql.Open(driverName, dsn)
	if err != nil {
		return nil, fmt.Errorf("sqlbe: open %s: %w", driverName, err)
	}
	be, err := New(db, opts)
	if err != nil {
		db.Close()
		return nil, err
	}
	return be, nil
}

// Name implements backend.Backend.
func (b *Backend) Name() string { return "sql" }

// Load implements backend.Backend: it drops the previous image's tables,
// creates one (F, T, V) table per element-type relation plus the node
// catalog, and bulk-inserts every tuple with fully parameterized INSERTs —
// values never appear in SQL text, so hostile content cannot break out of
// its column. The epoch advances only after a complete load.
//
// Load is not snapshot-isolated: it rewrites tables in place, so callers
// serialize Load against running queries (the serving layers already do).
func (b *Backend) Load(ctx context.Context, src *rdb.DB) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return backend.ErrClosed
	}
	for _, t := range b.tables {
		if _, err := b.db.ExecContext(ctx, ra.DropTableSQL(t)); err != nil {
			return fmt.Errorf("sqlbe: drop %s: %w", t, err)
		}
	}
	b.tables = nil

	names := make([]string, 0, len(src.Rels))
	for name := range src.Rels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := b.db.ExecContext(ctx, ra.DropTableSQL(name)); err != nil {
			return fmt.Errorf("sqlbe: drop %s: %w", name, err)
		}
		if _, err := b.db.ExecContext(ctx, ra.EdgeTableDDL(name)); err != nil {
			return fmt.Errorf("sqlbe: create %s: %w", name, err)
		}
		b.tables = append(b.tables, name)
		var rows [][]any
		for _, t := range src.Rels[name].Tuples() {
			rows = append(rows, []any{ra.EncodeNodeID(t.F), ra.EncodeNodeID(t.T), t.V})
		}
		if err := b.insertRows(ctx, name, []string{"F", "T", "V"}, rows); err != nil {
			return err
		}
	}

	nodes := b.opts.NodesTable
	if _, err := b.db.ExecContext(ctx, ra.DropTableSQL(nodes)); err != nil {
		return fmt.Errorf("sqlbe: drop %s: %w", nodes, err)
	}
	if _, err := b.db.ExecContext(ctx, ra.NodesTableDDL(nodes)); err != nil {
		return fmt.Errorf("sqlbe: create %s: %w", nodes, err)
	}
	b.tables = append(b.tables, nodes)
	// The catalog mirrors rdb's R_id: every stored node plus the virtual
	// document root, so ε holds at the top-level context.
	ids := make([]int, 0, len(src.Vals))
	for id := range src.Vals {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	nodeRows := [][]any{{ra.RootMarker, ""}}
	for _, id := range ids {
		nodeRows = append(nodeRows, []any{ra.EncodeNodeID(id), src.Vals[id]})
	}
	if err := b.insertRows(ctx, nodes, []string{"ID", "VAL"}, nodeRows); err != nil {
		return err
	}
	b.epoch++
	return nil
}

func (b *Backend) insertRows(ctx context.Context, table string, cols []string, rows [][]any) error {
	for len(rows) > 0 {
		n := b.opts.InsertBatch
		if n > len(rows) {
			n = len(rows)
		}
		args := make([]any, 0, n*len(cols))
		for _, r := range rows[:n] {
			args = append(args, r...)
		}
		if _, err := b.db.ExecContext(ctx, ra.InsertSQL(table, cols, n), args...); err != nil {
			return fmt.Errorf("sqlbe: insert into %s: %w", table, err)
		}
		rows = rows[n:]
	}
	return nil
}

// Snapshot implements backend.Backend. The snapshot pins the epoch label;
// isolation from subsequent Loads is the serving layer's responsibility
// (see Load).
func (b *Backend) Snapshot(_ context.Context) (backend.Snapshot, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, backend.ErrClosed
	}
	if b.epoch == 0 {
		return nil, backend.ErrNoData
	}
	return &snap{b: b, epoch: b.epoch}, nil
}

// Close implements backend.Backend.
func (b *Backend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return backend.ErrClosed
	}
	b.closed = true
	return b.db.Close()
}

type snap struct {
	b     *Backend
	epoch uint64
}

func (s *snap) Epoch() uint64 { return s.epoch }
func (s *snap) Close() error  { return nil }

// Execute renders the program and runs it statement by statement on one
// pinned connection. Limits.Timeout is enforced as a wall-clock bound with
// the same typed *obs.LimitError as the in-process engine; MaxTuples is
// checked against the materialized statement cardinalities the database
// reports; MaxLFPIters is pushed into the database as a session recursion
// guard (SET MAX_RECURSIVE_ITERATIONS, installed on the pinned connection
// before the statement sequence) and a database error naming that setting
// comes back as the engine's typed *obs.LimitError (DESIGN.md "Backends"
// records this contract).
func (s *snap) Execute(ctx context.Context, prog *ra.Program, opts backend.ExecOptions) (*backend.Result, error) {
	b := s.b
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return nil, backend.ErrClosed
	}
	start := time.Now()
	deadline := time.Duration(0)
	if opts.Limits.Timeout > 0 {
		deadline = opts.Limits.Timeout
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	overTime := func() error {
		if deadline > 0 && time.Since(start) > deadline {
			return &obs.LimitError{Kind: obs.LimitTimeout, Limit: int64(deadline), Actual: int64(time.Since(start))}
		}
		return nil
	}

	prefix := fmt.Sprintf("x%d_%d_", s.epoch, b.runSeq.Add(1))
	rendered, err := prog.RenderSQL(ra.SQLRenderOptions{
		Dialect:     b.opts.Dialect,
		NodesTable:  b.opts.NodesTable,
		TempPrefix:  prefix,
		MaxRecIters: opts.Limits.MaxLFPIters,
	})
	if err != nil {
		return nil, fmt.Errorf("sqlbe: render: %w", err)
	}

	conn, err := b.db.Conn(ctx)
	if err != nil {
		if terr := overTime(); terr != nil {
			return nil, terr
		}
		return nil, fmt.Errorf("sqlbe: acquire connection: %w", err)
	}
	defer conn.Close()
	var created []string
	defer func() {
		// Best-effort cleanup on a fresh context: the run's context may
		// already be done.
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for i := len(created) - 1; i >= 0; i-- {
			conn.ExecContext(dctx, ra.DropTableSQL(created[i]))
		}
		// Session settings are connection state; restore the defaults so the
		// pooled connection does not carry this run's recursion guard.
		for _, sess := range rendered.SessionReset {
			conn.ExecContext(dctx, sess)
		}
	}()

	for _, sess := range rendered.Session {
		if _, err := conn.ExecContext(ctx, sess); err != nil {
			if terr := overTime(); terr != nil {
				return nil, terr
			}
			return nil, fmt.Errorf("sqlbe: session setup %q: %w", sess, err)
		}
	}

	var stats rdb.Stats
	for _, st := range rendered.Stmts {
		if err := overTime(); err != nil {
			return nil, err
		}
		stStart := time.Now()
		res, err := conn.ExecContext(ctx, st.SQL)
		if err != nil {
			if terr := overTime(); terr != nil {
				return nil, terr
			}
			if lerr := recLimitError(err, opts.Limits.MaxLFPIters, st.Table); lerr != nil {
				return nil, lerr
			}
			return nil, fmt.Errorf("sqlbe: %s: %w", st.Table, err)
		}
		created = append(created, st.Table)
		stats.StmtsRun++
		out := 0
		if n, err := res.RowsAffected(); err == nil && n > 0 {
			out = int(n)
			stats.TuplesOut += out
		}
		if opts.Limits.MaxTuples > 0 && stats.TuplesOut > opts.Limits.MaxTuples {
			return nil, &obs.LimitError{Kind: obs.LimitTuples, Stmt: st.Table,
				Limit: int64(opts.Limits.MaxTuples), Actual: int64(stats.TuplesOut)}
		}
		if opts.Trace != nil {
			// Report the program's statement name (prefix stripped), so
			// Explain can line events up with the relational plan.
			opts.Trace.Add(obs.StmtEvent{Stmt: strings.TrimPrefix(st.Table, prefix),
				Op: "sql", Out: out, Wall: time.Since(stStart)})
		}
	}

	if err := overTime(); err != nil {
		return nil, err
	}
	rows, err := conn.QueryContext(ctx, rendered.ResultQuery)
	if err != nil {
		if terr := overTime(); terr != nil {
			return nil, terr
		}
		return nil, fmt.Errorf("sqlbe: result query: %w", err)
	}
	defer rows.Close()
	var ids []int
	for rows.Next() {
		var t string
		if err := rows.Scan(&t); err != nil {
			return nil, fmt.Errorf("sqlbe: scan answer: %w", err)
		}
		id, err := ra.DecodeNodeID(t)
		if err != nil {
			return nil, fmt.Errorf("sqlbe: answer %q is not a node ID: %w", t, err)
		}
		if id == 0 {
			// The virtual root is a context, never an answer.
			continue
		}
		ids = append(ids, id)
	}
	if err := rows.Err(); err != nil {
		return nil, fmt.Errorf("sqlbe: result rows: %w", err)
	}
	sort.Ints(ids)
	return &backend.Result{IDs: ids, Stats: stats}, nil
}

// recLimitError recognizes a database error raised by the pushed-down
// recursion guard (any message naming MAX_RECURSIVE_ITERATIONS) and maps it
// to the engine's typed limit error, so callers see one error shape whether
// the fixpoint cap tripped in-process or inside the database.
func recLimitError(err error, limit int, stmt string) error {
	if limit <= 0 || !strings.Contains(err.Error(), "MAX_RECURSIVE_ITERATIONS") {
		return nil
	}
	return &obs.LimitError{Kind: obs.LimitLFPIters, Stmt: stmt, Limit: int64(limit), Actual: int64(limit) + 1}
}
