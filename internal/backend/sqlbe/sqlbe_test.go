package sqlbe_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"xpath2sql/internal/backend"
	"xpath2sql/internal/backend/fakedb"
	"xpath2sql/internal/backend/sqlbe"
	"xpath2sql/internal/core"
	"xpath2sql/internal/dtd"
	"xpath2sql/internal/obs"
	"xpath2sql/internal/ra"
	"xpath2sql/internal/rdb"
	"xpath2sql/internal/shred"
	"xpath2sql/internal/workload"
	"xpath2sql/internal/xmlgen"
	"xpath2sql/internal/xmltree"
	"xpath2sql/internal/xpath"
)

var allStrategies = []core.Strategy{core.StrategyCycleEX, core.StrategyCycleE, core.StrategySQLGenR}

func openBackend(t *testing.T, name string) *sqlbe.Backend {
	t.Helper()
	dsn := "memory://sqlbe-" + name
	fakedb.Reset(dsn)
	be, err := sqlbe.Open(context.Background(), fakedb.DriverName, dsn, sqlbe.Options{})
	if err != nil {
		t.Fatalf("open backend: %v", err)
	}
	t.Cleanup(func() { be.Close(); fakedb.Reset(dsn) })
	return be
}

func makeDoc(t *testing.T, d *dtd.DTD, seed int64, vf func(string, *rand.Rand) string) (*xmltree.Document, *rdb.DB) {
	t.Helper()
	doc, err := xmlgen.Generate(d, xmlgen.Options{
		XL: 6, XR: 3, Seed: seed, MaxNodes: 200, ValueFunc: vf,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := shred.Shred(doc, d)
	if err != nil {
		t.Fatal(err)
	}
	return doc, db
}

func oracle(q xpath.Path, doc *xmltree.Document) []int {
	set := xpath.EvalDoc(q, doc)
	ids := set.IDs()
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func runOn(t *testing.T, snap backend.Snapshot, prog *ra.Program, opts backend.ExecOptions) []int {
	t.Helper()
	res, err := snap.Execute(context.Background(), prog, opts)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res.IDs
}

// TestEndToEnd shreds a dept document into the SQL backend and checks that
// the rendered WITH RECURSIVE programs of all three strategies, actually
// executed over database/sql, agree with the native oracle and the
// in-process rdb backend.
func TestEndToEnd(t *testing.T) {
	d := workload.Dept()
	vf := func(typ string, r *rand.Rand) string { return fmt.Sprintf("%s-%d", typ, r.Intn(5)) }
	doc, db := makeDoc(t, d, 5, vf)

	be := openBackend(t, "e2e")
	ctx := context.Background()
	if err := be.Load(ctx, db); err != nil {
		t.Fatalf("Load: %v", err)
	}
	snap, err := be.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	defer snap.Close()

	local := backend.NewLocalDB(db)
	lsnap, err := local.Snapshot(ctx)
	if err != nil {
		t.Fatalf("local Snapshot: %v", err)
	}
	defer lsnap.Close()

	queries := []string{
		"dept//project",
		"dept/course/takenBy/student",
		"//course[.//prereq]",
		"//qualified//course/cno",
		"//student[name][not(sno)]",
		"dept/course/project/pno[text() = 'no-such-value']", // empty answer
		"//prereq//course[cno or title]",
	}
	nonEmpty := 0
	for _, qs := range queries {
		q, err := xpath.Parse(qs)
		if err != nil {
			t.Fatalf("parse %q: %v", qs, err)
		}
		want := oracle(q, doc)
		if len(want) > 0 {
			nonEmpty++
		}
		for _, s := range allStrategies {
			r, err := core.Translate(q, d, core.Options{Strategy: s, SQL: core.DefaultSQLOptions()})
			if err != nil {
				t.Fatalf("[%v] Translate(%s): %v", s, qs, err)
			}
			var trace obs.Trace
			got := runOn(t, snap, r.Program, backend.ExecOptions{Trace: &trace})
			if !equalInts(got, want) {
				t.Fatalf("[%v] sqlbe %s = %v, want %v\nSQL:\n%s",
					s, qs, got, want, mustSQL(t, r.Program))
			}
			if len(trace.Events) == 0 {
				t.Fatalf("[%v] %s: no trace events recorded", s, qs)
			}
			lgot := runOn(t, lsnap, r.Program, backend.ExecOptions{})
			if !equalInts(lgot, got) {
				t.Fatalf("[%v] rdb backend %s = %v, sqlbe = %v", s, qs, lgot, got)
			}
		}
	}
	if nonEmpty < 3 {
		t.Fatalf("only %d queries had non-empty answers; document too small to be meaningful", nonEmpty)
	}
}

func mustSQL(t *testing.T, p *ra.Program) string {
	t.Helper()
	rs, err := p.RenderSQL(ra.SQLRenderOptions{Dialect: ra.DialectDB2})
	if err != nil {
		return fmt.Sprintf("<render error: %v>", err)
	}
	out := ""
	for _, s := range rs.Stmts {
		out += s.SQL + ";\n"
	}
	return out + rs.ResultQuery + ";\n"
}

// TestHostileValues is the escaping property test: text()='c' qualifiers
// whose constants contain quotes, doubled quotes, NULs, newlines and
// invalid UTF-8 must select exactly the same nodes through the rendered SQL
// literal path (escapeSQL) as through the in-process engine and the native
// oracle, and the parameterized INSERT path must have stored them intact.
func TestHostileValues(t *testing.T) {
	hostiles := []string{
		"it's",
		"a''b",
		"nul\x00byte",
		"line\nbreak",
		"bad\xff\xfeutf8",
		"quote-then-nul'\x00",
		"'; DROP TABLE all_nodes; --",
	}
	d := workload.Dept()
	vf := func(typ string, r *rand.Rand) string { return hostiles[r.Intn(len(hostiles))] }
	doc, db := makeDoc(t, d, 2, vf)

	be := openBackend(t, "hostile")
	ctx := context.Background()
	if err := be.Load(ctx, db); err != nil {
		t.Fatalf("Load: %v", err)
	}
	snap, err := be.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	defer snap.Close()

	local := backend.NewLocalDB(db)
	lsnap, err := local.Snapshot(ctx)
	if err != nil {
		t.Fatalf("local Snapshot: %v", err)
	}
	defer lsnap.Close()

	hits := 0
	for _, h := range hostiles {
		for _, leaf := range []string{"cno", "name", "pno"} {
			q := xpath.Filter{
				P: xpath.Desc{P: xpath.Label{Name: leaf}},
				Q: xpath.QText{C: h},
			}
			want := oracle(q, doc)
			if len(want) > 0 {
				hits++
			}
			for _, s := range allStrategies {
				r, err := core.Translate(q, d, core.Options{Strategy: s, SQL: core.DefaultSQLOptions()})
				if err != nil {
					t.Fatalf("[%v] Translate(//%s[text()=%q]): %v", s, leaf, h, err)
				}
				got := runOn(t, snap, r.Program, backend.ExecOptions{})
				if !equalInts(got, want) {
					t.Fatalf("[%v] sqlbe //%s[text()=%q] = %v, want %v", s, leaf, h, got, want)
				}
				lgot := runOn(t, lsnap, r.Program, backend.ExecOptions{})
				if !equalInts(lgot, got) {
					t.Fatalf("[%v] rdb //%s[text()=%q] = %v, sqlbe = %v", s, leaf, h, lgot, got)
				}
			}
		}
	}
	if hits == 0 {
		t.Fatal("no hostile value matched any node; the escaping path was never exercised")
	}
}

func TestDialectValidation(t *testing.T) {
	dsn := "memory://sqlbe-dialect"
	fakedb.Reset(dsn)
	t.Cleanup(func() { fakedb.Reset(dsn) })

	if _, err := sqlbe.Open(context.Background(), fakedb.DriverName, dsn,
		sqlbe.Options{Dialect: ra.DialectOracle}); !errors.Is(err, sqlbe.ErrExecDialect) {
		t.Fatalf("Oracle dialect: err = %v, want ErrExecDialect", err)
	}
	if _, err := sqlbe.Open(context.Background(), fakedb.DriverName, dsn,
		sqlbe.Options{Dialect: ra.Dialect(99)}); !errors.Is(err, ra.ErrDialect) {
		t.Fatalf("bad dialect: err = %v, want ra.ErrDialect", err)
	}
}

func TestSnapshotLifecycle(t *testing.T) {
	be := openBackend(t, "lifecycle")
	ctx := context.Background()

	if _, err := be.Snapshot(ctx); !errors.Is(err, backend.ErrNoData) {
		t.Fatalf("Snapshot before Load: err = %v, want ErrNoData", err)
	}

	d := workload.Dept()
	_, db := makeDoc(t, d, 1, nil)
	if err := be.Load(ctx, db); err != nil {
		t.Fatalf("Load: %v", err)
	}
	s1, err := be.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if s1.Epoch() != 1 {
		t.Fatalf("first epoch = %d, want 1", s1.Epoch())
	}
	// Reload: same backend, next epoch, still answers queries.
	if err := be.Load(ctx, db); err != nil {
		t.Fatalf("second Load: %v", err)
	}
	s2, err := be.Snapshot(ctx)
	if err != nil {
		t.Fatalf("second Snapshot: %v", err)
	}
	if s2.Epoch() != 2 {
		t.Fatalf("second epoch = %d, want 2", s2.Epoch())
	}
	q, _ := xpath.Parse("dept//project")
	r, err := core.Translate(q, d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Execute(ctx, r.Program, backend.ExecOptions{}); err != nil {
		t.Fatalf("Execute after reload: %v", err)
	}

	if err := be.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := be.Close(); !errors.Is(err, backend.ErrClosed) {
		t.Fatalf("double Close: err = %v, want ErrClosed", err)
	}
	if _, err := be.Snapshot(ctx); !errors.Is(err, backend.ErrClosed) {
		t.Fatalf("Snapshot after Close: err = %v, want ErrClosed", err)
	}
	if err := be.Load(ctx, db); !errors.Is(err, backend.ErrClosed) {
		t.Fatalf("Load after Close: err = %v, want ErrClosed", err)
	}
	if _, err := s2.Execute(ctx, r.Program, backend.ExecOptions{}); !errors.Is(err, backend.ErrClosed) {
		t.Fatalf("Execute after Close: err = %v, want ErrClosed", err)
	}
}

func TestLimits(t *testing.T) {
	be := openBackend(t, "limits")
	ctx := context.Background()
	d := workload.Dept()
	doc, db := makeDoc(t, d, 5, nil)
	if err := be.Load(ctx, db); err != nil {
		t.Fatalf("Load: %v", err)
	}
	snap, err := be.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	q, _ := xpath.Parse("dept//course")
	if len(oracle(q, doc)) < 2 {
		t.Fatal("test document too small to exercise limits")
	}
	r, err := core.Translate(q, d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	_, err = snap.Execute(ctx, r.Program, backend.ExecOptions{Limits: obs.Limits{MaxTuples: 1}})
	var lerr *obs.LimitError
	if !errors.As(err, &lerr) || lerr.Kind != obs.LimitTuples {
		t.Fatalf("MaxTuples=1: err = %v, want LimitError{Kind: MaxTuples}", err)
	}
	if !errors.Is(err, obs.ErrLimit) {
		t.Fatalf("limit error does not unwrap to obs.ErrLimit: %v", err)
	}

	_, err = snap.Execute(ctx, r.Program, backend.ExecOptions{Limits: obs.Limits{Timeout: time.Nanosecond}})
	if !errors.As(err, &lerr) || lerr.Kind != obs.LimitTimeout {
		t.Fatalf("Timeout=1ns: err = %v, want LimitError{Kind: Timeout}", err)
	}

	// Unlimited run still works on the same snapshot.
	if _, err := snap.Execute(ctx, r.Program, backend.ExecOptions{}); err != nil {
		t.Fatalf("unlimited run: %v", err)
	}
}

// TestMaxLFPItersPushdown: the recursion-depth limit is enforced by the
// database itself — the rendered session statement caps the recursive CTE,
// and the database's refusal comes back as the engine's typed LimitError —
// rather than by any client-side row counting.
func TestMaxLFPItersPushdown(t *testing.T) {
	be := openBackend(t, "lfpiters")
	ctx := context.Background()
	d := workload.Dept()

	// A prereq chain 12 courses deep: the descendant closure needs ~12
	// fixpoint rounds, far above the tight limit and far below the loose one.
	inner := ""
	for i := 12; i >= 1; i-- {
		inner = fmt.Sprintf("<course><cno>c%d</cno><title>t%d</title><prereq>%s</prereq><takenBy></takenBy></course>", i, i, inner)
	}
	doc, err := xmltree.Parse("<dept>" + inner + "</dept>")
	if err != nil {
		t.Fatal(err)
	}
	db, err := shred.Shred(doc, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := be.Load(ctx, db); err != nil {
		t.Fatalf("Load: %v", err)
	}
	snap, err := be.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	defer snap.Close()

	q, _ := xpath.Parse("dept//course")
	want := oracle(q, doc)
	if len(want) != 12 {
		t.Fatalf("oracle found %d courses, want 12", len(want))
	}
	r, err := core.Translate(q, d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	_, err = snap.Execute(ctx, r.Program, backend.ExecOptions{Limits: obs.Limits{MaxLFPIters: 1}})
	var lerr *obs.LimitError
	if !errors.As(err, &lerr) || lerr.Kind != obs.LimitLFPIters {
		t.Fatalf("MaxLFPIters=1: err = %v, want LimitError{Kind: LFPIters}", err)
	}
	if !errors.Is(err, obs.ErrLimit) {
		t.Fatalf("limit error does not unwrap to obs.ErrLimit: %v", err)
	}

	// A generous limit changes nothing about the answer, and the session
	// setting does not leak into later unlimited runs on the pooled conns.
	for _, limits := range []obs.Limits{{MaxLFPIters: 100}, {}} {
		res, err := snap.Execute(ctx, r.Program, backend.ExecOptions{Limits: limits})
		if err != nil {
			t.Fatalf("limits %+v: %v", limits, err)
		}
		if !equalInts(res.IDs, want) {
			t.Fatalf("limits %+v: got %v, want %v", limits, res.IDs, want)
		}
	}
}

// TestConcurrentRuns executes the same program from many goroutines over one
// backend: per-run temp prefixes must keep the statement sequences disjoint
// in fakedb's shared namespace.
func TestConcurrentRuns(t *testing.T) {
	be := openBackend(t, "concurrent")
	ctx := context.Background()
	d := workload.Dept()
	doc, db := makeDoc(t, d, 5, nil)
	if err := be.Load(ctx, db); err != nil {
		t.Fatalf("Load: %v", err)
	}
	snap, err := be.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	q, _ := xpath.Parse("//course[.//prereq]//student")
	r, err := core.Translate(q, d, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(q, doc)
	errc := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			res, err := snap.Execute(ctx, r.Program, backend.ExecOptions{})
			if err != nil {
				errc <- err
				return
			}
			if !equalInts(res.IDs, want) {
				errc <- fmt.Errorf("got %v, want %v", res.IDs, want)
				return
			}
			errc <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("concurrent run: %v", err)
		}
	}
}
