package backend

import (
	"context"
	"sync"

	"xpath2sql/internal/ra"
	"xpath2sql/internal/rdb"
)

// Local is the default in-process backend: the rdb morsel engine running
// directly over an *rdb.DB. Load replaces the whole database pointer, so
// snapshots taken before a Load keep reading the image they pinned — the
// same pointer-swap isolation the store layer relies on.
type Local struct {
	mu     sync.RWMutex
	db     *rdb.DB
	epoch  uint64
	closed bool
}

// NewLocal returns an empty Local backend; Load it before executing.
func NewLocal() *Local { return &Local{} }

// NewLocalDB returns a Local backend pre-loaded with db at epoch 1.
func NewLocalDB(db *rdb.DB) *Local {
	return &Local{db: db, epoch: 1}
}

// Name implements Backend.
func (l *Local) Name() string { return "rdb" }

// Load implements Backend: the image is adopted as-is (no copy), so the
// caller must not mutate src afterwards.
func (l *Local) Load(_ context.Context, src *rdb.DB) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.db = src
	l.epoch++
	return nil
}

// Snapshot implements Backend.
func (l *Local) Snapshot(_ context.Context) (Snapshot, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return nil, ErrClosed
	}
	if l.db == nil {
		return nil, ErrNoData
	}
	return &localSnap{db: l.db, epoch: l.epoch}, nil
}

// Close implements Backend.
func (l *Local) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.closed = true
	l.db = nil
	return nil
}

// AdoptDB wraps an externally pinned database — a store view's epoch, a
// freshly shredded document — as a zero-cost Snapshot, so code holding an
// *rdb.DB runs through the same execution path as backend-selected code.
// The epoch is the caller's to interpret (0 when unknown).
func AdoptDB(db *rdb.DB, epoch uint64) Snapshot {
	return &localSnap{db: db, epoch: epoch}
}

type localSnap struct {
	db    *rdb.DB
	epoch uint64
}

func (s *localSnap) Epoch() uint64 { return s.epoch }

func (s *localSnap) Close() error { return nil }

// Execute runs the program on the rdb engine: the morsel-parallel evaluator
// when Workers > 1, the serial lazy executor otherwise. This is the single
// home of the logic every in-process execution path used to duplicate. The
// serial path runs on a pooled rdb.ExecState, so a warm request reuses the
// previous request's relations, sets and index backings; the answer IDs are
// copied out before the state is released.
func (s *localSnap) Execute(ctx context.Context, prog *ra.Program, opts ExecOptions) (*Result, error) {
	if opts.Workers > 1 {
		rel, stats, err := rdb.RunParallelIntervalsCtx(ctx, s.db, prog, opts.Workers, opts.Limits, opts.Trace, opts.Intervals)
		if err != nil {
			return nil, err
		}
		return &Result{IDs: ExtractIDs(rel), Stats: *stats}, nil
	}
	st := rdb.AcquireState(s.db)
	defer st.Release()
	ex := st.Exec()
	ex.Limits = opts.Limits
	ex.IntervalMode = opts.Intervals
	rel, err := ex.RunCtx(ctx, prog, opts.Trace)
	if err != nil {
		return nil, err
	}
	return &Result{IDs: ExtractIDs(rel), Stats: ex.Stats}, nil
}

// ExtractIDs pulls the answer node IDs from a result relation, dropping the
// virtual document root (ID 0), which can enter a result via ε but is a
// context, not a document node.
func ExtractIDs(rel *rdb.Relation) []int {
	ids := rel.TIDs()
	if len(ids) > 0 && ids[0] == 0 {
		ids = ids[1:]
	}
	return ids
}
