package serveload

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"xpath2sql"
	"xpath2sql/internal/bench"
	"xpath2sql/internal/ivm"
	"xpath2sql/internal/rdb"
	"xpath2sql/internal/server"
	"xpath2sql/internal/store"
	"xpath2sql/internal/workload"
)

// The watch experiment (benchexp -exp watch) measures continuous queries in
// two sections:
//
//  1. Maintenance vs full re-execution: for each standing query, every
//     single-subtree update is applied to a materialized rdb.ViewState
//     (delta-seeded semi-naive insert, interval-pruned delete, or the
//     rebuild fallback — whatever the maintenance matrix selects) and, for
//     comparison, the answer is recomputed from scratch through the normal
//     serving path on the same epoch. The ratio is the payoff of standing
//     views over re-running the query per update.
//  2. End-to-end propagation: W SSE subscribers watch the dept queries over
//     HTTP while one writer applies single-subtree updates; each delivered
//     delta's latency is measured from just before the update request to
//     the moment the subscriber decodes the event for that epoch.

// watchSubLevels are the subscriber counts of the propagation section.
var watchSubLevels = []int{1, 4, 16}

// watchQueries is the serving mix plus one child-axis path: the descendant
// queries carry a pushed end constraint and so fall in the rebuild-on-delete
// class, while dept/course/prereq/course is deletable and exercises
// interval-pruned delete maintenance.
var watchQueries = append(append([]string{}, serveQueries...), "dept/course/prereq/course")

// WatchMaintResult compares incremental maintenance against full
// re-execution for one standing query and one update kind.
type WatchMaintResult struct {
	Query   string `json:"query"`
	Op      string `json:"op"`
	Updates int    `json:"updates"`
	// Maintained counts updates the view absorbed incrementally; the rest
	// fell back to a full rebuild (still exact, just not incremental).
	Maintained    int     `json:"maintained"`
	IncrementalUS float64 `json:"incremental_us"` // mean per update
	FullUS        float64 `json:"full_us"`        // mean per update
	Speedup       float64 `json:"speedup"`        // FullUS / IncrementalUS
}

// WatchPropResult is one subscriber level of the propagation section.
type WatchPropResult struct {
	Subscribers int     `json:"subscribers"`
	Updates     int     `json:"updates"`
	Deliveries  int     `json:"deliveries"`
	Resyncs     int     `json:"resyncs"`
	Errors      int     `json:"errors"`
	MeanMS      float64 `json:"mean_ms"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
}

// WatchReport is the serialized form of BENCH_watch.json.
type WatchReport struct {
	GeneratedBy string             `json:"generated_by"`
	Scale       string             `json:"scale"`
	Elements    int                `json:"elements"`
	Queries     []string           `json:"queries"`
	Maintenance []WatchMaintResult `json:"maintenance"`
	Propagation []WatchPropResult  `json:"propagation"`
}

// JSON renders the report for BENCH_watch.json.
func (r *WatchReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// RunWatch builds the paper-scale dept dataset in a live store and measures
// standing-view maintenance (vs full re-execution) and SSE delta
// propagation.
func RunWatch(c bench.Config) (*WatchReport, error) {
	d, err := xpath2sql.ParseDTD(workload.DeptText)
	if err != nil {
		return nil, err
	}
	target := scaled(c.Scale, 120000)
	doc, err := generateRetryFacade(d, 12, 4, 42, target)
	if err != nil {
		return nil, err
	}
	db, err := xpath2sql.Shred(doc, d)
	if err != nil {
		return nil, err
	}
	st, err := store.Open(store.Config{DTD: d, Seed: db, Fsync: store.FsyncNever})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	eng := xpath2sql.New(d, xpath2sql.WithLimits(xpath2sql.Limits{
		MaxTuples:   c.Limits.MaxTuples,
		MaxLFPIters: c.Limits.MaxLFPIters,
		Timeout:     c.Limits.Timeout,
	}))

	updates := 8
	if c.Scale == bench.ScalePaper || c.Scale == bench.ScaleMedium {
		updates = 40
	}

	report := &WatchReport{
		GeneratedBy: "benchexp -exp watch",
		Scale:       string(c.Scale),
		Elements:    doc.Size(),
		Queries:     watchQueries,
	}
	cprintf(c, "watch — standing views over dept, %d elements (%d single-subtree updates per query/op)\n",
		doc.Size(), updates)
	cprintf(c, "%-16s %-8s %7s %10s %12s %10s %9s\n",
		"query", "op", "updates", "maint", "incr µs", "full µs", "speedup")

	for _, q := range watchQueries {
		res, err := watchMaintain(eng, st, q, updates)
		if err != nil {
			return nil, fmt.Errorf("maintenance %q: %w", q, err)
		}
		for _, r := range res {
			report.Maintenance = append(report.Maintenance, r)
			cprintf(c, "%-16s %-8s %7d %10d %12.1f %10.1f %8.1fx\n",
				r.Query, r.Op, r.Updates, r.Maintained, r.IncrementalUS, r.FullUS, r.Speedup)
		}
	}

	// Propagation over the real HTTP service.
	srv, err := server.New(server.Config{Engine: eng, Store: st})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cprintf(c, "%-12s %8s %11s %8s %7s %9s %9s %9s %9s\n",
		"subscribers", "updates", "deliveries", "resyncs", "errors", "mean ms", "p50", "p95", "p99")
	for _, w := range watchSubLevels {
		res, err := watchPropagation(ts.URL, w, 2*updates)
		if err != nil {
			return nil, fmt.Errorf("propagation %d subs: %w", w, err)
		}
		report.Propagation = append(report.Propagation, res)
		cprintf(c, "%-12d %8d %11d %8d %7d %9.3f %9.3f %9.3f %9.3f\n",
			res.Subscribers, res.Updates, res.Deliveries, res.Resyncs, res.Errors,
			res.MeanMS, res.P50MS, res.P95MS, res.P99MS)
	}
	return report, nil
}

// watchMaintain measures one standing query: per single-subtree insert and
// delete, the incremental maintenance cost of the materialized view vs a
// full re-execution through the serving path on the same epoch.
func watchMaintain(eng *xpath2sql.Engine, st *store.Store, query string, updates int) ([]WatchMaintResult, error) {
	ctx := context.Background()
	p, err := eng.PrepareString(ctx, query)
	if err != nil {
		return nil, err
	}
	vs, err := rdb.BuildViewState(st.View().DB, p.Program())
	if err != nil {
		return nil, err
	}
	deltas := make(chan store.TxnDelta, 2)
	st.SetOnApply(func(td store.TxnDelta) { deltas <- td })
	defer st.SetOnApply(nil)

	// advance applies one update to the view the way the hub's maintenance
	// matrix would, timing it; reports whether the incremental path ran.
	advance := func(td store.TxnDelta) (time.Duration, bool, error) {
		t0 := time.Now()
		err := rdb.ErrNonIncremental
		switch {
		case td.Op == store.OpInsert && vs.Insertable():
			_, err = vs.ApplyInsert(td.DB, ivm.BaseDeltaOf(td))
		case td.Op == store.OpDelete && vs.Deletable():
			_, err = vs.ApplyDelete(td.DB, td.Prev, td.Root, td.Deleted)
		case td.Op == store.OpUpdateText && vs.TextImmune():
			err = vs.ApplyText(td.DB)
		}
		if err == nil {
			return time.Since(t0), true, nil
		}
		t0 = time.Now()
		if _, _, err := vs.Rebuild(td.DB); err != nil {
			return 0, false, err
		}
		return time.Since(t0), false, nil
	}
	// fullRun recomputes the answer from scratch on the update's epoch —
	// what serving the query per update would cost without standing views.
	fullRun := func(td store.TxnDelta) (time.Duration, error) {
		t0 := time.Now()
		_, err := p.ExecuteOn(ctx, xpath2sql.NewLocalBackend(td.DB))
		return time.Since(t0), err
	}

	ins := WatchMaintResult{Query: query, Op: "insert", Updates: updates}
	del := WatchMaintResult{Query: query, Op: "delete", Updates: updates}
	var insInc, insFull, delInc, delFull time.Duration
	// All inserts first, then the matching deletes: interleaving would make
	// every non-deletable view's rebuild (on the delete) discard the memo
	// indexes the next insert probes, charging steady-state insert
	// maintenance with a cold-start penalty on each sample.
	roots := make([]int, 0, updates)
	for i := 0; i < updates; i++ {
		ur, err := st.InsertSubtree(1, storeFragment)
		if err != nil {
			return nil, err
		}
		roots = append(roots, ur.NodeID)
		td := <-deltas
		dt, maintained, err := advance(td)
		if err != nil {
			return nil, err
		}
		insInc += dt
		if maintained {
			ins.Maintained++
		}
		if dt, err := fullRun(td); err != nil {
			return nil, err
		} else {
			insFull += dt
		}
	}
	for _, id := range roots {
		if _, err := st.DeleteSubtree(id); err != nil {
			return nil, err
		}
		td := <-deltas
		dt, maintained, err := advance(td)
		if err != nil {
			return nil, err
		}
		delInc += dt
		if maintained {
			del.Maintained++
		}
		if dt, err := fullRun(td); err != nil {
			return nil, err
		} else {
			delFull += dt
		}
	}
	us := func(d time.Duration) float64 { return d.Seconds() * 1e6 / float64(updates) }
	ins.IncrementalUS, ins.FullUS = us(insInc), us(insFull)
	del.IncrementalUS, del.FullUS = us(delInc), us(delFull)
	if ins.IncrementalUS > 0 {
		ins.Speedup = ins.FullUS / ins.IncrementalUS
	}
	if del.IncrementalUS > 0 {
		del.Speedup = del.FullUS / del.IncrementalUS
	}
	return []WatchMaintResult{ins, del}, nil
}

// watchEvent mirrors the wire shape of one /v1/watch event.
type watchEvent struct {
	Type   string `json:"type"`
	Epoch  uint64 `json:"epoch"`
	Resync bool   `json:"resync,omitempty"`
}

// watchPropagation opens w SSE subscriptions (cycling the query mix), then
// applies updates single-subtree inserts/deletes and measures, per
// delivered delta, the time from just before the update request to the
// subscriber decoding the event for that epoch.
func watchPropagation(base string, w, updates int) (WatchPropResult, error) {
	res := WatchPropResult{Subscribers: w, Updates: updates}

	var mu sync.Mutex
	sent := map[uint64]time.Time{} // epoch → just-before-update instant
	var lats []float64             // milliseconds
	var resyncs, errs int
	var lastEpoch uint64

	var wg sync.WaitGroup
	stop := make(chan struct{})
	ready := make(chan error, w)
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			query := watchQueries[i%len(watchQueries)]
			blob, _ := json.Marshal(map[string]string{"query": query})
			resp, err := http.Post(base+"/v1/watch", "application/json", bytes.NewReader(blob))
			if err != nil {
				ready <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				ready <- fmt.Errorf("watch %q: status %d", query, resp.StatusCode)
				return
			}
			go func() { <-stop; resp.Body.Close() }() // unblocks the scanner on shutdown
			sc := bufio.NewScanner(resp.Body)
			first := true
			for sc.Scan() {
				line := sc.Bytes()
				if !bytes.HasPrefix(line, []byte("data: ")) {
					continue
				}
				var ev watchEvent
				if err := json.Unmarshal(line[len("data: "):], &ev); err != nil {
					mu.Lock()
					errs++
					mu.Unlock()
					continue
				}
				if first {
					first = false
					ready <- nil // snapshot received: subscription is live
					continue
				}
				now := time.Now()
				mu.Lock()
				if ev.Resync {
					resyncs++
				} else if t0, ok := sent[ev.Epoch]; ok {
					lats = append(lats, now.Sub(t0).Seconds()*1000)
				}
				done := lastEpoch != 0 && ev.Epoch >= lastEpoch
				mu.Unlock()
				if done {
					return
				}
			}
		}(i)
	}
	for i := 0; i < w; i++ {
		if err := <-ready; err != nil {
			close(stop)
			wg.Wait()
			return res, err
		}
	}

	fail := func(err error) (WatchPropResult, error) {
		close(stop)
		wg.Wait()
		return res, err
	}
	// The writer paces itself on its own subscription: waiting until the hub
	// publishes each epoch before sending the next update keeps the
	// maintainer queue drained, so a sample measures propagation of an
	// isolated update rather than time spent queued behind earlier ones.
	pacer, err := openWatchSSE(base, watchQueries[0])
	if err != nil {
		return fail(err)
	}
	defer pacer.Close()
	// Epochs are sequential, so one untimed priming pair pins the counter;
	// every subsequent update's epoch is known before the request is sent,
	// letting t0 be recorded first.
	id, ep, err := watchInsert(base)
	if err != nil {
		return fail(err)
	}
	if err := storeUpdate(base, map[string]any{"op": "delete_subtree", "node": id}); err != nil {
		return fail(err)
	}
	if err := pacer.waitEpoch(ep + 1); err != nil {
		return fail(err)
	}
	next := ep + 2
	mu.Lock()
	lastEpoch = ep + 1 + uint64(updates)
	mu.Unlock()
	for i := 0; i < updates/2; i++ {
		mu.Lock()
		sent[next] = time.Now()
		mu.Unlock()
		id, _, err := watchInsert(base)
		if err != nil {
			return fail(err)
		}
		if err := pacer.waitEpoch(next); err != nil {
			return fail(err)
		}
		next++
		mu.Lock()
		sent[next] = time.Now()
		mu.Unlock()
		if err := storeUpdate(base, map[string]any{"op": "delete_subtree", "node": id}); err != nil {
			return fail(err)
		}
		if err := pacer.waitEpoch(next); err != nil {
			return fail(err)
		}
		next++
	}
	// Subscribers exit on seeing the final epoch; force-stop stragglers
	// (e.g. after a resync swallowed the final delta) after a grace period.
	graceDone := make(chan struct{})
	go func() { wg.Wait(); close(graceDone) }()
	select {
	case <-graceDone:
	case <-time.After(10 * time.Second):
	}
	close(stop)
	wg.Wait()

	sort.Float64s(lats)
	res.Deliveries = len(lats)
	res.Resyncs = resyncs
	res.Errors = errs
	res.MeanMS = mean(lats)
	res.P50MS = percentile(lats, 0.50)
	res.P95MS = percentile(lats, 0.95)
	res.P99MS = percentile(lats, 0.99)
	return res, nil
}

// sseWatch is a bare /v1/watch SSE connection, used by the propagation
// writer to pace itself on the hub's own output.
type sseWatch struct {
	resp *http.Response
	sc   *bufio.Scanner
}

func openWatchSSE(base, query string) (*sseWatch, error) {
	blob, err := json.Marshal(map[string]string{"query": query})
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/v1/watch", "application/json", bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("watch: status %d", resp.StatusCode)
	}
	return &sseWatch{resp: resp, sc: bufio.NewScanner(resp.Body)}, nil
}

func (s *sseWatch) Close() { s.resp.Body.Close() }

// waitEpoch consumes events until one at or past the epoch arrives.
func (s *sseWatch) waitEpoch(ep uint64) error {
	for s.sc.Scan() {
		line := s.sc.Bytes()
		if !bytes.HasPrefix(line, []byte("data: ")) {
			continue
		}
		var ev watchEvent
		if err := json.Unmarshal(line[len("data: "):], &ev); err != nil {
			continue
		}
		if ev.Epoch >= ep {
			return nil
		}
	}
	return fmt.Errorf("watch stream ended before epoch %d: %v", ep, s.sc.Err())
}

// watchInsert posts an insert_subtree and returns the new root ID and epoch.
func watchInsert(base string) (int, uint64, error) {
	blob, err := json.Marshal(map[string]any{
		"op": "insert_subtree", "parent": 1, "fragment": storeFragment,
	})
	if err != nil {
		return 0, 0, err
	}
	resp, err := http.Post(base+"/v1/update", "application/json", bytes.NewReader(blob))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var body struct {
		NodeID int    `json:"node_id"`
		Epoch  uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("insert: status %d", resp.StatusCode)
	}
	return body.NodeID, body.Epoch, nil
}
