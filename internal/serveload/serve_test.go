package serveload

import (
	"encoding/json"
	"strings"
	"testing"

	"xpath2sql/internal/bench"
)

// TestRunServe is the smoke test for the serving load generator: at small
// scale it must drive real traffic at every concurrency level with zero
// errors and produce a serializable report with sane latency ordering.
func TestRunServe(t *testing.T) {
	if testing.Short() {
		t.Skip("load generation in -short mode")
	}
	var out strings.Builder
	report, err := RunServe(bench.Config{Scale: bench.ScaleSmall, Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Levels) != len(serveLevels) {
		t.Fatalf("levels = %d, want %d", len(report.Levels), len(serveLevels))
	}
	for i, l := range report.Levels {
		if l.Concurrency != serveLevels[i] {
			t.Fatalf("level %d concurrency = %d, want %d", i, l.Concurrency, serveLevels[i])
		}
		if l.Errors != 0 {
			t.Fatalf("level %d: %d errors", l.Concurrency, l.Errors)
		}
		if l.Requests == 0 || l.QPS <= 0 {
			t.Fatalf("level %d did no work: %+v", l.Concurrency, l)
		}
		if l.P50MS > l.P95MS || l.P95MS > l.P99MS {
			t.Fatalf("percentiles out of order: %+v", l)
		}
		if l.MeanMS <= 0 || l.P99MS <= 0 {
			t.Fatalf("degenerate latencies: %+v", l)
		}
	}
	if report.Elements == 0 || len(report.Queries) == 0 {
		t.Fatalf("report metadata incomplete: %+v", report)
	}

	blob, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var round ServeReport
	if err := json.Unmarshal(blob, &round); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if !strings.Contains(out.String(), "closed-loop") {
		t.Fatalf("table output missing:\n%s", out.String())
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(s, 0.5); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(s, 0.99); got != 10 {
		t.Fatalf("p99 = %v", got)
	}
	if got := percentile(s, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}
