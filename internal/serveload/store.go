package serveload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"xpath2sql"
	"xpath2sql/internal/bench"
	"xpath2sql/internal/server"
	"xpath2sql/internal/store"
	"xpath2sql/internal/workload"
)

// The store experiment (benchexp -exp store) measures the live document
// store through the full HTTP service under a mixed read/write workload:
// closed-loop clients issue queries and updates in a configurable ratio
// (-write-frac), updates flowing through the serialized writer + WAL while
// queries execute against pinned epoch snapshots. Reads and writes are
// reported separately — QPS and p50/p95/p99 — per concurrency level, so the
// cost of concurrent mutation on read latency (and vice versa) is visible.

// storeFragment is the subtree inserted by write operations: a minimal
// DTD-conforming course (5 nodes). Writers alternate inserts and deletes of
// their own subtrees so the database size stays bounded over the run.
const storeFragment = "<course><cno>bench</cno><title>t</title><prereq></prereq><takenBy></takenBy></course>"

// StoreMixResult is one concurrency level's measurement, reads and writes
// separated.
type StoreMixResult struct {
	Concurrency int     `json:"concurrency"`
	Reads       int     `json:"reads"`
	Writes      int     `json:"writes"`
	Errors      int     `json:"errors"`
	DurationMS  float64 `json:"duration_ms"`
	ReadQPS     float64 `json:"read_qps"`
	WriteQPS    float64 `json:"write_qps"`
	ReadMeanMS  float64 `json:"read_mean_ms"`
	ReadP50MS   float64 `json:"read_p50_ms"`
	ReadP95MS   float64 `json:"read_p95_ms"`
	ReadP99MS   float64 `json:"read_p99_ms"`
	WriteMeanMS float64 `json:"write_mean_ms"`
	WriteP50MS  float64 `json:"write_p50_ms"`
	WriteP95MS  float64 `json:"write_p95_ms"`
	WriteP99MS  float64 `json:"write_p99_ms"`
}

// StoreReport is the serialized form of BENCH_store.json.
type StoreReport struct {
	GeneratedBy string           `json:"generated_by"`
	Scale       string           `json:"scale"`
	Elements    int              `json:"elements"`
	WriteFrac   float64          `json:"write_frac"`
	Fsync       string           `json:"fsync"`
	Queries     []string         `json:"queries"`
	Levels      []StoreMixResult `json:"levels"`
}

// JSON renders the report for BENCH_store.json.
func (r *StoreReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// RunStore builds the dept dataset, wraps it in a durable store (WAL in a
// temporary directory, interval fsync — the production default), stands up
// the query service and drives it with closed-loop clients that mix reads
// and writes at the given fraction.
func RunStore(c bench.Config, writeFrac float64) (*StoreReport, error) {
	if writeFrac < 0 || writeFrac > 1 {
		return nil, fmt.Errorf("write fraction %v out of [0,1]", writeFrac)
	}
	d, err := xpath2sql.ParseDTD(workload.DeptText)
	if err != nil {
		return nil, err
	}
	target := scaled(c.Scale, 120000)
	doc, err := generateRetryFacade(d, 12, 4, 42, target)
	if err != nil {
		return nil, err
	}
	db, err := xpath2sql.Shred(doc, d)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "xpath2sql-storebench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(store.Config{DTD: d, Seed: db, Dir: dir, Fsync: store.FsyncInterval})
	if err != nil {
		return nil, err
	}
	defer st.Close()

	eng := xpath2sql.New(d, xpath2sql.WithLimits(xpath2sql.Limits{
		MaxTuples:   c.Limits.MaxTuples,
		MaxLFPIters: c.Limits.MaxLFPIters,
		Timeout:     c.Limits.Timeout,
	}))
	maxClients := serveLevels[len(serveLevels)-1]
	srv, err := server.New(server.Config{Engine: eng, Store: st, QueueDepth: 2 * maxClients})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	measure := 3 * time.Second
	if c.Scale == bench.ScaleSmall || c.Scale == "" {
		measure = 500 * time.Millisecond
	}

	report := &StoreReport{
		GeneratedBy: "benchexp -exp store",
		Scale:       string(c.Scale),
		Elements:    doc.Size(),
		WriteFrac:   writeFrac,
		Fsync:       string(store.FsyncInterval),
		Queries:     serveQueries,
	}
	cprintf(c, "store — mixed read/write load over dept, %d elements, write-frac %.2f (measure %v per level)\n",
		doc.Size(), writeFrac, measure)
	cprintf(c, "%-8s %8s %8s %7s %9s %9s %9s %9s %9s %9s %9s %9s\n",
		"clients", "reads", "writes", "errors", "r qps", "w qps",
		"r p50", "r p95", "r p99", "w p50", "w p95", "w p99")

	// Warm the plan cache so every level measures steady-state serving.
	for _, q := range serveQueries {
		if err := serveOnce(ts.URL+"/v1/query", q); err != nil {
			return nil, fmt.Errorf("warmup %q: %w", q, err)
		}
	}

	for _, n := range serveLevels {
		res, err := storeLevel(ts.URL, n, writeFrac, measure)
		if err != nil {
			return nil, err
		}
		report.Levels = append(report.Levels, res)
		cprintf(c, "%-8d %8d %8d %7d %9.0f %9.0f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
			res.Concurrency, res.Reads, res.Writes, res.Errors, res.ReadQPS, res.WriteQPS,
			res.ReadP50MS, res.ReadP95MS, res.ReadP99MS, res.WriteP50MS, res.WriteP95MS, res.WriteP99MS)
	}
	return report, nil
}

// storeLevel runs n closed-loop clients for roughly the measure duration.
// Each client rolls writeFrac per iteration: reads cycle the query mix,
// writes alternate inserting a course subtree and deleting one of the
// client's own earlier inserts (so growth stays bounded and deletes always
// target live nodes).
func storeLevel(base string, n int, writeFrac float64, measure time.Duration) (StoreMixResult, error) {
	type clientResult struct {
		reads, writes []float64 // milliseconds
		errors        int
	}
	stop := make(chan struct{})
	results := make([]clientResult, n)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &results[i]
			rng := rand.New(rand.NewSource(int64(1000*n + i)))
			var owned []int // roots of subtrees this client inserted
			for seq := i; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				rt0 := time.Now()
				if rng.Float64() < writeFrac {
					var err error
					if len(owned) > 0 && (len(owned) >= 8 || rng.Intn(2) == 0) {
						last := owned[len(owned)-1]
						owned = owned[:len(owned)-1]
						err = storeUpdate(base, map[string]any{"op": "delete_subtree", "node": last})
					} else {
						var id int
						id, err = storeInsert(base)
						if err == nil {
							owned = append(owned, id)
						}
					}
					if err != nil {
						r.errors++
						continue
					}
					r.writes = append(r.writes, time.Since(rt0).Seconds()*1000)
				} else {
					if err := serveOnce(base+"/v1/query", serveQueries[seq%len(serveQueries)]); err != nil {
						r.errors++
						continue
					}
					r.reads = append(r.reads, time.Since(rt0).Seconds()*1000)
				}
			}
		}(i)
	}
	time.Sleep(measure)
	close(stop)
	wg.Wait()
	elapsed := time.Since(t0)

	var reads, writes []float64
	errors := 0
	for _, r := range results {
		reads = append(reads, r.reads...)
		writes = append(writes, r.writes...)
		errors += r.errors
	}
	sort.Float64s(reads)
	sort.Float64s(writes)
	return StoreMixResult{
		Concurrency: n,
		Reads:       len(reads),
		Writes:      len(writes),
		Errors:      errors,
		DurationMS:  elapsed.Seconds() * 1000,
		ReadQPS:     float64(len(reads)) / elapsed.Seconds(),
		WriteQPS:    float64(len(writes)) / elapsed.Seconds(),
		ReadMeanMS:  mean(reads),
		ReadP50MS:   percentile(reads, 0.50),
		ReadP95MS:   percentile(reads, 0.95),
		ReadP99MS:   percentile(reads, 0.99),
		WriteMeanMS: mean(writes),
		WriteP50MS:  percentile(writes, 0.50),
		WriteP95MS:  percentile(writes, 0.95),
		WriteP99MS:  percentile(writes, 0.99),
	}, nil
}

// storeInsert posts an insert_subtree and returns the assigned root node ID.
func storeInsert(base string) (int, error) {
	blob, err := json.Marshal(map[string]any{
		"op": "insert_subtree", "parent": 1, "fragment": storeFragment,
	})
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(base+"/v1/update", "application/json", bytes.NewReader(blob))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var body struct {
		NodeID int `json:"node_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("insert: status %d", resp.StatusCode)
	}
	return body.NodeID, nil
}

// storeUpdate posts an arbitrary update request and fails on non-200.
func storeUpdate(base string, req map[string]any) error {
	blob, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/update", "application/json", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var sink json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&sink); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("update: status %d: %s", resp.StatusCode, sink)
	}
	return nil
}
