// Package serveload is the serving load generator (benchexp -exp serve): it
// stands the internal/server query service up in-process and drives it with
// closed-loop clients, reporting throughput and latency percentiles per
// concurrency level. It lives outside internal/bench because it exercises
// the root facade and internal/server, which the root package's own
// benchmarks (which import internal/bench) must not transitively depend on.
package serveload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"xpath2sql"
	"xpath2sql/internal/bench"
	"xpath2sql/internal/server"
	"xpath2sql/internal/workload"
)

// The serve experiment measures the full HTTP service — admission control,
// plan cache, morsel-parallel execution — under closed-loop load: N clients
// each issue a request, wait for the answer, and immediately issue the next.
// It reports throughput (QPS) and the latency distribution (p50/p95/p99)
// per concurrency level over the dept running example at paper scale
// (120,000 elements at -scale paper), the serving-layer analogue of the
// paper's Exp-1 single-query timings.

// serveQueries is the request mix: three recursive descendant queries of
// increasing answer size plus a leaf query, cycled per request so cache hits
// and distinct plans interleave the way mixed production traffic does.
var serveQueries = []string{
	"dept//project",
	"dept//course",
	"dept//student",
	"dept//cno",
}

// serveLevels are the closed-loop client counts measured.
var serveLevels = []int{1, 4, 8}

// serveClient is the load generator's HTTP client. The default transport
// keeps only two idle connections per host, so at higher client counts most
// requests would tear down and re-dial their connection — measuring dial
// churn instead of the server. Idle capacity covers every client.
var serveClient = &http.Client{Transport: &http.Transport{
	MaxIdleConns:        64,
	MaxIdleConnsPerHost: 64,
}}

// ServeResult is one concurrency level's measurement.
type ServeResult struct {
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	DurationMS  float64 `json:"duration_ms"`
	QPS         float64 `json:"qps"`
	MeanMS      float64 `json:"mean_ms"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
}

// ServeReport is the serialized form of BENCH_serve.json.
type ServeReport struct {
	GeneratedBy string        `json:"generated_by"`
	Scale       string        `json:"scale"`
	Elements    int           `json:"elements"`
	Queries     []string      `json:"queries"`
	Levels      []ServeResult `json:"levels"`
}

// JSON renders the report for BENCH_serve.json.
func (r *ServeReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// RunServe builds the dept dataset, stands up the query service in-process
// and drives it with closed-loop clients at each concurrency level.
func RunServe(c bench.Config) (*ServeReport, error) {
	d, err := xpath2sql.ParseDTD(workload.DeptText)
	if err != nil {
		return nil, err
	}
	target := scaled(c.Scale, 120000)
	doc, err := generateRetryFacade(d, 12, 4, 42, target)
	if err != nil {
		return nil, err
	}
	db, err := xpath2sql.Shred(doc, d)
	if err != nil {
		return nil, err
	}
	eng := xpath2sql.New(d, xpath2sql.WithLimits(xpath2sql.Limits{
		MaxTuples:   c.Limits.MaxTuples,
		MaxLFPIters: c.Limits.MaxLFPIters,
		Timeout:     c.Limits.Timeout,
	}))
	// Queue depth covers the deepest client level: a closed-loop client is
	// never mid-flight twice, so admission sheds nothing and the latency
	// numbers measure queueing + execution rather than rejection rate.
	// MaxConcurrent admits every client so concurrent requests reach the
	// micro-batcher, which coalesces them into one merged run per window —
	// cross-query sharing, not thread fan-out, is what scales throughput on
	// this serving path (a solo request bypasses the window entirely).
	maxClients := serveLevels[len(serveLevels)-1]
	srv, err := server.New(server.Config{
		Engine:        eng,
		Source:        server.FromDB(db),
		MaxConcurrent: 2 * maxClients,
		QueueDepth:    2 * maxClients,
		BatchWindow:   2 * time.Millisecond,
		MaxBatch:      maxClients,
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	measure := 3 * time.Second
	if c.Scale == bench.ScaleSmall || c.Scale == "" {
		measure = 500 * time.Millisecond
	}

	report := &ServeReport{
		GeneratedBy: "benchexp -exp serve",
		Scale:       string(c.Scale),
		Elements:    doc.Size(),
		Queries:     serveQueries,
	}
	cprintf(c, "serve — closed-loop load over dept, %d elements (measure %v per level)\n", doc.Size(), measure)
	cprintf(c, "%-12s %10s %8s %10s %9s %9s %9s %9s\n",
		"clients", "requests", "errors", "qps", "mean ms", "p50 ms", "p95 ms", "p99 ms")

	url := ts.URL + "/v1/query"
	// Warm the plan cache so every level measures steady-state serving.
	for _, q := range serveQueries {
		if err := serveOnce(url, q); err != nil {
			return nil, fmt.Errorf("warmup %q: %w", q, err)
		}
	}

	for _, n := range serveLevels {
		res, err := serveLevel(url, n, measure)
		if err != nil {
			return nil, err
		}
		report.Levels = append(report.Levels, res)
		cprintf(c, "%-12d %10d %8d %10.0f %9.3f %9.3f %9.3f %9.3f\n",
			res.Concurrency, res.Requests, res.Errors, res.QPS,
			res.MeanMS, res.P50MS, res.P95MS, res.P99MS)
	}
	return report, nil
}

// serveLevel runs n closed-loop clients for roughly the measure duration and
// aggregates their latency samples into exact percentiles.
func serveLevel(url string, n int, measure time.Duration) (ServeResult, error) {
	type clientResult struct {
		samples []float64 // milliseconds
		errors  int
	}
	stop := make(chan struct{})
	results := make([]clientResult, n)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &results[i]
			for seq := i; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				q := serveQueries[seq%len(serveQueries)]
				rt0 := time.Now()
				if err := serveOnce(url, q); err != nil {
					r.errors++
					continue
				}
				r.samples = append(r.samples, time.Since(rt0).Seconds()*1000)
			}
		}(i)
	}
	time.Sleep(measure)
	close(stop)
	wg.Wait()
	elapsed := time.Since(t0)

	var samples []float64
	errors := 0
	for _, r := range results {
		samples = append(samples, r.samples...)
		errors += r.errors
	}
	sort.Float64s(samples)
	res := ServeResult{
		Concurrency: n,
		Requests:    len(samples),
		Errors:      errors,
		DurationMS:  elapsed.Seconds() * 1000,
		QPS:         float64(len(samples)) / elapsed.Seconds(),
		MeanMS:      mean(samples),
		P50MS:       percentile(samples, 0.50),
		P95MS:       percentile(samples, 0.95),
		P99MS:       percentile(samples, 0.99),
	}
	return res, nil
}

// serveOnce issues one query and fails on any non-200 or malformed answer.
func serveOnce(url, query string) error {
	blob, err := json.Marshal(map[string]string{"query": query})
	if err != nil {
		return err
	}
	resp, err := serveClient.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// Validate the envelope without materializing the ids array: decoding
	// tens of thousands of ints per response would make the load generator,
	// not the server, the benchmark bottleneck on a shared CPU.
	var body struct {
		Count int             `json:"count"`
		IDs   json.RawMessage `json:"ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	if len(body.IDs) == 0 {
		return fmt.Errorf("answer missing ids")
	}
	return nil
}

func mean(sorted []float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	var s float64
	for _, v := range sorted {
		s += v
	}
	return s / float64(len(sorted))
}

// percentile returns the exact q-quantile of the sorted samples
// (nearest-rank, the convention load generators report).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// generateRetryFacade mirrors GenerateRetry over the root facade: random
// generation is a branching process that can go extinct early, so seeds are
// retried until the document reaches a healthy fraction of the target size.
func generateRetryFacade(d *xpath2sql.DTD, xl, xr int, seed int64, maxNodes int) (*xpath2sql.Document, error) {
	var best *xpath2sql.Document
	for attempt := int64(0); attempt < 32; attempt++ {
		doc, err := xpath2sql.Generate(d, xpath2sql.GenOptions{
			XL: xl, XR: xr, Seed: seed + attempt*7919, MaxNodes: maxNodes,
		})
		if err != nil {
			return nil, err
		}
		if best == nil || doc.Size() > best.Size() {
			best = doc
		}
		if best.Size() >= maxNodes/2 {
			return best, nil
		}
	}
	return best, nil
}

// scaled applies the bench scale factor with the same 500-element floor the
// bench harness uses.
func scaled(s bench.Scale, paperSize int) int {
	n := int(float64(paperSize) * s.Factor())
	if n < 500 {
		n = 500
	}
	return n
}

func cprintf(c bench.Config, format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}
