package serveload

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"xpath2sql"
	"xpath2sql/internal/bench"
	"xpath2sql/internal/cluster"
	"xpath2sql/internal/ra"
	"xpath2sql/internal/workload"
)

// The cluster experiment measures scale-out: the same multi-document
// collection is opened as a 1-, 2- and 4-shard cluster and driven with
// closed-loop clients issuing document-scoped queries, the traffic shape
// sharding is built for — each request routes to the single shard owning its
// document and touches only that shard's fraction of the collection. The
// single-shard level is the baseline; the report records aggregate QPS,
// latency percentiles and the speedup per shard count. Scatter queries (which
// fan out to every shard and merge) are exercised once per level as a
// cross-check but not measured — they bound the other end of the routing
// spectrum.

// clusterShardCounts are the cluster sizes measured; the first is the
// baseline every speedup is relative to.
var clusterShardCounts = []int{1, 2, 4}

// clusterQueries is the request mix, cycled per request: two recursive
// descendant queries and a leaf query over the dept schema.
var clusterQueries = []string{
	"dept//project",
	"dept//course",
	"dept//cno",
}

// clusterDocs is the number of documents in the collection. A multiple of
// every measured shard count, so round-robin placement balances exactly.
const clusterDocs = 8

// clusterClients is the closed-loop client count, fixed across levels so the
// only variable is the shard count.
const clusterClients = 1

// ClusterResult is one shard count's measurement.
type ClusterResult struct {
	Shards     int     `json:"shards"`
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	DurationMS float64 `json:"duration_ms"`
	QPS        float64 `json:"qps"`
	MeanMS     float64 `json:"mean_ms"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	// Speedup is this level's QPS over the single-shard baseline's.
	Speedup float64 `json:"speedup"`
}

// ClusterReport is the serialized form of BENCH_cluster.json.
type ClusterReport struct {
	GeneratedBy string          `json:"generated_by"`
	Scale       string          `json:"scale"`
	Documents   int             `json:"documents"`
	Elements    int             `json:"elements"`
	Clients     int             `json:"clients"`
	Queries     []string        `json:"queries"`
	Levels      []ClusterResult `json:"levels"`
}

// JSON renders the report for BENCH_cluster.json.
func (r *ClusterReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// RunCluster builds the multi-document dept collection and measures
// closed-loop document-scoped query throughput at each shard count.
func RunCluster(c bench.Config) (*ClusterReport, error) {
	d, err := xpath2sql.ParseDTD(workload.DeptText)
	if err != nil {
		return nil, err
	}
	// Every document is generated from the same seed, so all 8 are the same
	// size and any count-balanced placement is also data-balanced — random
	// per-document sizes would skew shard volumes and blur the measured
	// scaling. (BuildCollection rebases node IDs per document, so identical
	// content still yields disjoint ID ranges.)
	perDoc := scaled(c.Scale, 240000)
	doc, err := generateRetryFacade(d, 12, 4, 42, perDoc)
	if err != nil {
		return nil, err
	}
	db, err := xpath2sql.Shred(doc, d)
	if err != nil {
		return nil, err
	}
	docs := make([]*xpath2sql.DB, 0, clusterDocs)
	elements := 0
	for i := 0; i < clusterDocs; i++ {
		docs = append(docs, db)
		elements += doc.Size()
	}
	collection, err := cluster.BuildCollection(d, docs)
	if err != nil {
		return nil, err
	}
	// Ordinal placement balances the 8 documents exactly (4/4 and 2/2/2/2);
	// modulo on raw root IDs would skew the split and understate scaling.
	var roots []int
	for id, p := range collection.ParentOf {
		if p == 0 {
			roots = append(roots, id)
		}
	}
	placement := cluster.NewOrdinalPlacement(roots)

	eng := xpath2sql.New(d)
	progs := make([]*ra.Program, 0, len(clusterQueries))
	for _, q := range clusterQueries {
		tr, err := eng.TranslateString(context.Background(), q)
		if err != nil {
			return nil, fmt.Errorf("translate %q: %w", q, err)
		}
		progs = append(progs, tr.Program())
	}

	measure := 3 * time.Second
	if c.Scale == bench.ScaleSmall || c.Scale == "" {
		measure = 2 * time.Second
	}

	report := &ClusterReport{
		GeneratedBy: "benchexp -exp cluster",
		Scale:       string(c.Scale),
		Documents:   clusterDocs,
		Elements:    elements,
		Clients:     clusterClients,
		Queries:     clusterQueries,
	}
	cprintf(c, "cluster — closed-loop document-scoped load, %d documents, %d elements, %d clients (measure %v per level)\n",
		clusterDocs, elements, clusterClients, measure)
	cprintf(c, "%-8s %10s %8s %10s %9s %9s %9s %9s %9s\n",
		"shards", "requests", "errors", "qps", "mean ms", "p50 ms", "p95 ms", "p99 ms", "speedup")

	var baseQPS float64
	for _, n := range clusterShardCounts {
		// Level the heap between levels: earlier levels' garbage would
		// otherwise tax later levels' GC and skew the speedup.
		runtime.GC()
		cl, err := cluster.Open(cluster.Config{
			DTD:       d,
			Shards:    n,
			Placement: placement,
		}, collection)
		if err != nil {
			return nil, err
		}
		res, err := clusterLevel(cl, progs, measure)
		cl.Close()
		if err != nil {
			return nil, err
		}
		if baseQPS == 0 {
			baseQPS = res.QPS
		}
		if baseQPS > 0 {
			res.Speedup = res.QPS / baseQPS
		}
		report.Levels = append(report.Levels, res)
		cprintf(c, "%-8d %10d %8d %10.0f %9.3f %9.3f %9.3f %9.3f %8.2fx\n",
			res.Shards, res.Requests, res.Errors, res.QPS,
			res.MeanMS, res.P50MS, res.P95MS, res.P99MS, res.Speedup)
	}
	return report, nil
}

// clusterLevel drives one cluster with closed-loop clients for roughly the
// measure duration: every request picks a document and a query by sequence
// number and executes document-scoped, so placement — not the load
// generator — decides which shard runs it.
func clusterLevel(cl *cluster.Cluster, progs []*ra.Program, measure time.Duration) (ClusterResult, error) {
	ctx := context.Background()
	roots := cl.DocRoots()
	sort.Ints(roots)
	if len(roots) == 0 {
		return ClusterResult{}, fmt.Errorf("cluster has no document roots")
	}

	// One scattered execution per program proves the fan-out path answers
	// (and warms every shard) before the measured document-scoped loop.
	for _, p := range progs {
		if _, err := cl.Exec(ctx, p, cluster.ExecOptions{}); err != nil {
			return ClusterResult{}, fmt.Errorf("scatter warmup: %w", err)
		}
	}

	type clientResult struct {
		samples []float64 // milliseconds
		errors  int
	}
	stop := make(chan struct{})
	results := make([]clientResult, clusterClients)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < clusterClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &results[i]
			for seq := i; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				root := roots[seq%len(roots)]
				prog := progs[seq%len(progs)]
				rt0 := time.Now()
				if _, err := cl.Exec(ctx, prog, cluster.ExecOptions{Doc: root, Workers: 1}); err != nil {
					r.errors++
					continue
				}
				r.samples = append(r.samples, time.Since(rt0).Seconds()*1000)
			}
		}(i)
	}
	time.Sleep(measure)
	close(stop)
	wg.Wait()
	elapsed := time.Since(t0)

	var samples []float64
	errors := 0
	for _, r := range results {
		samples = append(samples, r.samples...)
		errors += r.errors
	}
	sort.Float64s(samples)
	return ClusterResult{
		Shards:     cl.Stats().ShardCount,
		Requests:   len(samples),
		Errors:     errors,
		DurationMS: elapsed.Seconds() * 1000,
		QPS:        float64(len(samples)) / elapsed.Seconds(),
		MeanMS:     mean(samples),
		P50MS:      percentile(samples, 0.50),
		P95MS:      percentile(samples, 0.95),
		P99MS:      percentile(samples, 0.99),
	}, nil
}
