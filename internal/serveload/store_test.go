package serveload

import (
	"encoding/json"
	"strings"
	"testing"

	"xpath2sql/internal/bench"
)

// TestRunStore is the smoke test for the mixed read/write load generator: at
// small scale it must drive both reads and writes at every level with zero
// errors and produce a serializable report with sane per-class latencies.
func TestRunStore(t *testing.T) {
	if testing.Short() {
		t.Skip("load generation in -short mode")
	}
	var out strings.Builder
	report, err := RunStore(bench.Config{Scale: bench.ScaleSmall, Out: &out}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Levels) != len(serveLevels) {
		t.Fatalf("levels = %d, want %d", len(report.Levels), len(serveLevels))
	}
	for i, l := range report.Levels {
		if l.Concurrency != serveLevels[i] {
			t.Fatalf("level %d concurrency = %d, want %d", i, l.Concurrency, serveLevels[i])
		}
		if l.Errors != 0 {
			t.Fatalf("level %d: %d errors", l.Concurrency, l.Errors)
		}
		if l.Reads == 0 || l.Writes == 0 {
			t.Fatalf("level %d missing a request class: %+v", l.Concurrency, l)
		}
		if l.ReadQPS <= 0 || l.WriteQPS <= 0 {
			t.Fatalf("level %d degenerate QPS: %+v", l.Concurrency, l)
		}
		if l.ReadP50MS > l.ReadP95MS || l.ReadP95MS > l.ReadP99MS {
			t.Fatalf("read percentiles out of order: %+v", l)
		}
		if l.WriteP50MS > l.WriteP95MS || l.WriteP95MS > l.WriteP99MS {
			t.Fatalf("write percentiles out of order: %+v", l)
		}
	}
	if report.WriteFrac != 0.3 || report.Elements == 0 {
		t.Fatalf("report metadata incomplete: %+v", report)
	}

	blob, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var round StoreReport
	if err := json.Unmarshal(blob, &round); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if !strings.Contains(out.String(), "write-frac") {
		t.Fatalf("table output missing:\n%s", out.String())
	}
}

// TestRunStoreRejectsBadFraction: write fractions outside [0,1] fail fast.
func TestRunStoreRejectsBadFraction(t *testing.T) {
	if _, err := RunStore(bench.Config{Scale: bench.ScaleSmall}, 1.5); err == nil {
		t.Fatal("RunStore(1.5) succeeded")
	}
	if _, err := RunStore(bench.Config{Scale: bench.ScaleSmall}, -0.1); err == nil {
		t.Fatal("RunStore(-0.1) succeeded")
	}
}
