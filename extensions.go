package xpath2sql

import (
	"io"

	"xpath2sql/internal/core"
	"xpath2sql/internal/cost"
	"xpath2sql/internal/obs"
	"xpath2sql/internal/rdb"
	"xpath2sql/internal/shred"
	"xpath2sql/internal/specialized"
)

// Narrow aliases keeping the facade's signatures tidy.
type (
	ioWriter = io.Writer
	ioReader = io.Reader
)

var rdbLoad = rdb.Load

// This file exposes the extension features: XML reconstruction of answers
// (§5.2), multi-query translation, the strategy-advising cost model (§8),
// and specialized DTDs — the paper's encoding of XML Schema (§8).

// Reconstruct rebuilds the XML subtrees of the given answer nodes from the
// shredded relations alone, wrapped in a synthetic <result> root (§5.2
// "XML reconstruction").
func Reconstruct(db *DB, answers []int) (*Document, error) {
	return shred.Reconstruct(db, answers)
}

// AnswerPath returns the root-to-node label path of an answer, recovered
// from the shredded catalog (the P attribute's purpose in §5.2).
func AnswerPath(db *DB, id int) (string, error) {
	return shred.AncestorPath(db, id)
}

// Batch is a multi-query translation whose common sub-queries are shared
// across queries. Batches built by an Engine carry its limits and
// parallelism into ExecuteContext. Like Translation, a Batch is immutable
// and safe for concurrent use.
type Batch struct {
	b       *core.BatchResult
	limits  Limits
	workers int
}

// Program returns the merged statement sequence.
func (b *Batch) Program() *Program { return b.b.Program }

// WithParallelism returns a copy of the batch bound to a different worker
// count, leaving the receiver untouched — the batch analogue of
// Translation.WithParallelism, for admission-aware serving layers.
func (b *Batch) WithParallelism(workers int) *Batch {
	if workers < 1 {
		workers = 1
	}
	c := *b
	c.workers = workers
	return &c
}

// Explain renders the merged program's bare plan: one line per RA
// statement, shared sub-queries appearing once. Per-run annotations travel
// with each execution's BatchAnswer; render them with BatchAnswer.Explain.
func (b *Batch) Explain() string {
	return obs.Explain(b.b.Program, nil, nil)
}

// Satisfiable reports whether the query can match on some document of the
// DTD, decided from the DTD structure alone (§8's satisfiability analysis,
// structural fragment): unmatchable label steps and structurally false
// qualifiers collapse the translation to ∅.
func Satisfiable(q Query, d *DTD) (bool, error) {
	return core.Satisfiable(q, d)
}

// SaveDB writes a shredded database in a line-oriented text format;
// LoadDB restores it, so documents are shredded once and reused.
func SaveDB(db *DB, w ioWriter) error { return db.Save(w) }

// LoadDB reads a database written by SaveDB.
func LoadDB(r ioReader) (*DB, error) { return rdbLoad(r) }

// Re-exported cost-model types.
type (
	// DBStats summarizes a shredded database for cost estimation.
	DBStats = cost.DBStats
	// CostEstimate is an estimated execution cost and result cardinality.
	CostEstimate = cost.Estimate
	// StrategyAdvice pairs a strategy with its estimate.
	StrategyAdvice = cost.Advice
)

// GatherStats summarizes a database for the cost model.
func GatherStats(db *DB) DBStats { return cost.Gather(db) }

// EstimateCost estimates the execution cost of a translation on a database
// with the given statistics.
func EstimateCost(t *Translation, s DBStats) CostEstimate {
	return cost.EstimateProgram(t.res.Program, s)
}

// AdviseStrategy estimates every applicable strategy for the query and
// returns them best-first (§8's cost-model guidance).
func AdviseStrategy(q Query, d *DTD, s DBStats) ([]StrategyAdvice, error) {
	return cost.Choose(q, d, s)
}

// SpecializedDTD is a specialized DTD (Ele', D', g) — the formal core of
// XML Schema per §8: the same element name may follow different productions
// depending on context, via specialized types mapped to surface labels by g.
type SpecializedDTD = specialized.DTD

// ShredSpecialized shreds a document by inferred specialized type, one
// relation per specialized type.
func ShredSpecialized(doc *Document, s *SpecializedDTD) (*DB, error) {
	return specialized.Shred(doc, s)
}

// TranslateSpecialized translates a surface-vocabulary query over a
// specialized DTD: label steps expand through g⁻¹ into unions (the
// disjunctive-production encoding of §8) and the ordinary pipeline runs
// over the inner DTD.
func TranslateSpecialized(q Query, s *SpecializedDTD, opts Options) (*Translation, error) {
	res, err := specialized.Translate(q, s, opts)
	if err != nil {
		return nil, err
	}
	return &Translation{res: res}, nil
}
