package xpath2sql_test

// This file is the only remaining caller of the deprecated facade entry
// points — Translate, TranslateString, Translation.Execute,
// Translation.ExecuteParallel, TranslateBatch, TranslateBatchStrings and
// Batch.Execute. It pins their behavior to the Engine API they delegate to,
// so the legacy surface keeps working until it is removed.

import (
	"context"
	"testing"

	"xpath2sql"
)

func deprecatedSetup(t *testing.T) (*xpath2sql.DTD, *xpath2sql.DB) {
	t.Helper()
	d, err := xpath2sql.ParseDTD(deptDTD)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xpath2sql.ParseXML(deptXML)
	if err != nil {
		t.Fatal(err)
	}
	db, err := xpath2sql.Shred(doc, d)
	if err != nil {
		t.Fatal(err)
	}
	return d, db
}

// TestDeprecatedTranslateAgreesWithEngine: the free Translate/TranslateString
// wrappers and Translation.Execute return the same answers as Engine.Prepare
// + ExecuteContext.
func TestDeprecatedTranslateAgreesWithEngine(t *testing.T) {
	d, db := deprecatedSetup(t)
	ctx := context.Background()
	prep, err := xpath2sql.New(d).PrepareString(ctx, "dept//project")
	if err != nil {
		t.Fatal(err)
	}
	want, err := prep.ExecuteContext(ctx, db)
	if err != nil {
		t.Fatal(err)
	}

	old, err := xpath2sql.TranslateString("dept//project", d, xpath2sql.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ids, stats, err := old.Execute(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(want.IDs) {
		t.Fatalf("deprecated path %v vs engine %v", ids, want.IDs)
	}
	for i := range ids {
		if ids[i] != want.IDs[i] {
			t.Fatalf("deprecated path %v vs engine %v", ids, want.IDs)
		}
	}
	if stats.StmtsRun == 0 {
		t.Fatal("deprecated Execute reported no statements")
	}

	q, err := xpath2sql.ParseQuery("dept//project")
	if err != nil {
		t.Fatal(err)
	}
	viaQuery, err := xpath2sql.Translate(q, d, xpath2sql.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ids2, _, err := viaQuery.Execute(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids2) != len(ids) {
		t.Fatalf("Translate %v vs TranslateString %v", ids2, ids)
	}
}

// TestDeprecatedExecuteParallelAgrees: the deprecated per-call parallel
// entry point matches serial execution.
func TestDeprecatedExecuteParallelAgrees(t *testing.T) {
	d, db := deprecatedSetup(t)
	tr, err := xpath2sql.TranslateString("dept//project | dept//student", d, xpath2sql.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	serial, _, err := tr.Execute(db)
	if err != nil {
		t.Fatal(err)
	}
	par, stats, err := tr.ExecuteParallel(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatalf("parallel %v vs serial %v", par, serial)
	}
	for i := range par {
		if par[i] != serial[i] {
			t.Fatalf("parallel %v vs serial %v", par, serial)
		}
	}
	if stats.StmtsRun == 0 {
		t.Fatal("no statements ran")
	}
}

// TestDeprecatedBatchAgreesWithEngine: the free batch constructors and
// Batch.Execute answer like Engine.TranslateBatch + ExecuteContext.
func TestDeprecatedBatchAgreesWithEngine(t *testing.T) {
	d, db := deprecatedSetup(t)
	queries := []string{"dept//project", "dept//course"}

	old, err := xpath2sql.TranslateBatchStrings(queries, d, xpath2sql.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	answers, _, err := old.Execute(db)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	qs := make([]xpath2sql.Query, len(queries))
	for i, s := range queries {
		q, err := xpath2sql.ParseQuery(s)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	viaQueries, err := xpath2sql.TranslateBatch(qs, d, xpath2sql.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	answers2, _, err := viaQueries.Execute(db)
	if err != nil {
		t.Fatal(err)
	}

	batch, err := xpath2sql.New(d).TranslateBatch(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := batch.ExecuteContext(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(want.IDs) || len(answers2) != len(want.IDs) {
		t.Fatalf("batch shapes: %d / %d vs %d", len(answers), len(answers2), len(want.IDs))
	}
	for i := range want.IDs {
		if len(answers[i]) != len(want.IDs[i]) || len(answers2[i]) != len(want.IDs[i]) {
			t.Fatalf("query %d: deprecated %v / %v vs engine %v", i, answers[i], answers2[i], want.IDs[i])
		}
	}
}
