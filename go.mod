module xpath2sql

go 1.22
