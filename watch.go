package xpath2sql

import (
	"context"

	"xpath2sql/internal/core"
	"xpath2sql/internal/ivm"
	"xpath2sql/internal/ra"
	"xpath2sql/internal/store"
)

// Continuous queries: a WatchHub registers translated XPath queries as
// materialized standing views over a live Store and streams per-epoch answer
// deltas to subscribers. Translation goes through the engine's plan cache;
// maintenance runs incrementally when the plan admits it (see
// internal/ivm).

// WatchHub maintains standing views over a live store and fans out answer
// deltas to subscriptions. Build one with Engine.NewWatchHub.
type WatchHub = ivm.Hub

// WatchConfig tunes a WatchHub's admission control and buffering.
type WatchConfig struct {
	// MaxSubscriptions caps concurrently active subscriptions. 0 selects
	// the ivm default; negative is unlimited.
	MaxSubscriptions int
	// SubscriptionBuffer bounds each subscription's pending-event buffer;
	// a subscriber that falls further behind is degraded to a snapshot
	// resync. 0 selects the ivm default.
	SubscriptionBuffer int
}

// WatchEvent is one message on a watch subscription: an initial (or resync)
// snapshot of the full answer, or one epoch's (added, removed) delta.
type WatchEvent = ivm.Event

// WatchSubscription is one client's ordered event stream over a standing
// query. Receive with Next; release with Close.
type WatchSubscription = ivm.Subscription

// Watch event types.
const (
	WatchSnapshot = ivm.EventSnapshot
	WatchDelta    = ivm.EventDelta
)

// ErrSubscriptionLimit reports that a WatchHub's subscription cap is
// reached.
var ErrSubscriptionLimit = ivm.ErrSubscriptionLimit

// NewWatchHub attaches a continuous-query hub to the store: registered
// queries are translated through this engine (sharing its plan cache and
// options) and maintained as standing views across the store's epochs. The
// hub takes over the store's update hook; call Close to release it. The
// store must serve the same DTD the engine was built with.
func (e *Engine) NewWatchHub(st *store.Store, cfg WatchConfig) (*WatchHub, error) {
	return ivm.NewHub(ivm.Config{
		Store: st,
		Compile: func(ctx context.Context, query string) (*ra.Program, string, error) {
			q, err := ParseQuery(query)
			if err != nil {
				return nil, "", err
			}
			res, err := e.translate(ctx, q)
			if err != nil {
				return nil, "", err
			}
			// The plan-cache key doubles as the view-sharing key: queries
			// that canonicalize to the same plan share one standing view.
			return res.Program, core.PlanKey(e.dtdFP, q, e.opts), nil
		},
		MaxSubscriptions:   cfg.MaxSubscriptions,
		SubscriptionBuffer: cfg.SubscriptionBuffer,
	})
}
