package xpath2sql_test

// Tests for the public Backend surface: WithBackend engine wiring,
// Translation.Execute/ExecuteOn, and the typed-error SQL renderer. The fake
// database/sql driver is linked here (test files and main packages are the
// only places drivers may be imported).

import (
	"context"
	"errors"
	"strings"
	"testing"

	"xpath2sql"
	"xpath2sql/internal/backend/fakedb"
)

func backendSetup(t *testing.T) (*xpath2sql.DTD, *xpath2sql.Document, *xpath2sql.DB) {
	t.Helper()
	d, err := xpath2sql.ParseDTD(deptDTD)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xpath2sql.ParseXML(deptXML)
	if err != nil {
		t.Fatal(err)
	}
	db, err := xpath2sql.Shred(doc, d)
	if err != nil {
		t.Fatal(err)
	}
	return d, doc, db
}

// TestEngineWithBackend: an engine built with WithBackend executes through
// it, and the answers match ExecuteContext on the same data.
func TestEngineWithBackend(t *testing.T) {
	d, doc, db := backendSetup(t)
	ctx := context.Background()

	eng := xpath2sql.New(d, xpath2sql.WithBackend(xpath2sql.NewLocalBackend(db)))
	p, err := eng.PrepareString(ctx, "dept//project")
	if err != nil {
		t.Fatal(err)
	}
	ans, err := p.Execute(ctx)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	direct, err := p.ExecuteOn(ctx, xpath2sql.NewLocalBackend(db))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.IDs) != len(direct.IDs) {
		t.Fatalf("backend %v vs direct %v", ans.IDs, direct.IDs)
	}
	want := xpath2sql.EvalXPath(mustParseQuery(t, "dept//project"), doc)
	if len(ans.IDs) != len(want) {
		t.Fatalf("backend %v vs oracle %v", ans.IDs, want)
	}
	if ans.Stats.StmtsRun == 0 {
		t.Fatal("no statements recorded")
	}
	if ans.Explain() == "" {
		t.Fatal("empty Explain output")
	}
}

// TestExecuteWithoutBackend: Execute on an engine built without WithBackend
// reports ErrNoBackend; ExecuteContext still works.
func TestExecuteWithoutBackend(t *testing.T) {
	d, _, db := backendSetup(t)
	ctx := context.Background()
	p, err := xpath2sql.New(d).PrepareString(ctx, "dept//project")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(ctx); !errors.Is(err, xpath2sql.ErrNoBackend) {
		t.Fatalf("Execute without backend: err = %v, want ErrNoBackend", err)
	}
	if _, err := p.ExecuteOn(ctx, xpath2sql.NewLocalBackend(db)); err != nil {
		t.Fatalf("ExecuteContext: %v", err)
	}
}

// TestExecuteOnSQLBackend: the same prepared query executed on the
// in-process backend and on the SQL backend (fake driver) agrees, via the
// public facade only.
func TestExecuteOnSQLBackend(t *testing.T) {
	d, doc, db := backendSetup(t)
	ctx := context.Background()

	dsn := "memory://facade-sqlbackend"
	fakedb.Reset(dsn)
	t.Cleanup(func() { fakedb.Reset(dsn) })
	be, err := xpath2sql.OpenSQLBackend(ctx, fakedb.DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	if _, err := be.Snapshot(ctx); !errors.Is(err, xpath2sql.ErrNoData) {
		t.Fatalf("Snapshot before Load: err = %v, want ErrNoData", err)
	}
	if err := be.Load(ctx, db); err != nil {
		t.Fatal(err)
	}

	eng := xpath2sql.New(d, xpath2sql.WithBackend(be))
	for _, qs := range []string{"dept//project", "//course[.//prereq]", "//student/name"} {
		p, err := eng.PrepareString(ctx, qs)
		if err != nil {
			t.Fatal(err)
		}
		viaSQL, err := p.Execute(ctx)
		if err != nil {
			t.Fatalf("%s on SQL backend: %v", qs, err)
		}
		viaLocal, err := p.ExecuteOn(ctx, xpath2sql.NewLocalBackend(db))
		if err != nil {
			t.Fatalf("%s on local backend: %v", qs, err)
		}
		if len(viaSQL.IDs) != len(viaLocal.IDs) {
			t.Fatalf("%s: sql %v vs local %v", qs, viaSQL.IDs, viaLocal.IDs)
		}
		for i := range viaSQL.IDs {
			if viaSQL.IDs[i] != viaLocal.IDs[i] {
				t.Fatalf("%s: sql %v vs local %v", qs, viaSQL.IDs, viaLocal.IDs)
			}
		}
		want := xpath2sql.EvalXPath(mustParseQuery(t, qs), doc)
		if len(want) != len(viaSQL.IDs) {
			t.Fatalf("%s: sql %v vs oracle %v", qs, viaSQL.IDs, want)
		}
	}

	if err := be.Close(); err != nil {
		t.Fatal(err)
	}
	if err := be.Close(); !errors.Is(err, xpath2sql.ErrBackendClosed) {
		t.Fatalf("double close: err = %v, want ErrBackendClosed", err)
	}
}

// TestSQLTypedErrors: the SQL renderer validates its dialect and rejects
// render-only plans with matchable sentinels.
func TestSQLTypedErrors(t *testing.T) {
	d, _, _ := backendSetup(t)
	ctx := context.Background()
	p, err := xpath2sql.New(d).PrepareString(ctx, "dept//project")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SQL(xpath2sql.Dialect(99)); !errors.Is(err, xpath2sql.ErrDialect) {
		t.Fatalf("bad dialect: err = %v, want ErrDialect", err)
	}
	sql, err := p.SQL(xpath2sql.DialectDB2,
		xpath2sql.WithNodesTable("catalog"), xpath2sql.WithTempPrefix("z9_"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "z9_") {
		t.Fatalf("temp prefix not applied:\n%s", sql)
	}
}

func mustParseQuery(t *testing.T, s string) xpath2sql.Query {
	t.Helper()
	q, err := xpath2sql.ParseQuery(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
